#include "chord/chord_node.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace flowercdn {

namespace {

/// Builds a fresh find-successor request (each forward attempt needs its
/// own message object since the network consumes them).
std::unique_ptr<ChordFindSuccessorMsg> MakeFindSuccessor(ChordId key,
                                                         PeerId origin,
                                                         uint64_t lookup_id,
                                                         int hops) {
  auto msg = std::make_unique<ChordFindSuccessorMsg>();
  msg->key = key;
  msg->origin = origin;
  msg->lookup_id = lookup_id;
  msg->hops = hops;
  return msg;
}

}  // namespace

ChordNode::ChordNode(Network* network, PeerId self, ChordId id,
                     const Params& params)
    : network_(network),
      self_(self),
      id_(id),
      params_(params),
      rpc_(network, self),
      fingers_(id, params.finger_count) {
  FLOWERCDN_CHECK(params.successor_list_size >= 1);
}

void ChordNode::Bind(Incarnation incarnation) {
  incarnation_ = incarnation;
  rpc_.Bind(incarnation);
}

std::optional<RingPeer> ChordNode::successor() const {
  if (successors_.empty()) return std::nullopt;
  return successors_.front();
}

std::vector<RingPeer> ChordNode::DistinctSuccessors(size_t limit) const {
  // successors_ is already deduplicated by peer and sorted by clockwise
  // distance; only the single-node-ring self entry needs filtering.
  std::vector<RingPeer> out;
  out.reserve(std::min(limit, successors_.size()));
  for (const RingPeer& s : successors_) {
    if (out.size() >= limit) break;
    if (s.peer == self_ || s.peer == kInvalidPeer) continue;
    out.push_back(s);
  }
  return out;
}

void ChordNode::CreateRing() {
  FLOWERCDN_CHECK(state_ == State::kIdle);
  successors_.assign(1, RingPeer{self_, id_});
  predecessor_.reset();
  state_ = State::kActive;
  ScheduleStabilize();
}

void ChordNode::Join(PeerId bootstrap, JoinCallback done) {
  FLOWERCDN_CHECK(state_ == State::kIdle);
  FLOWERCDN_CHECK(bootstrap != self_) << "cannot bootstrap from self";
  state_ = State::kJoining;
  LookupVia(bootstrap, id_,
            [this, done = std::move(done)](const Status& status,
                                           RingPeer owner, int /*hops*/) {
              if (state_ != State::kJoining) {
                done(Status::FailedPrecondition("join aborted"));
                return;
              }
              if (!status.ok()) {
                state_ = State::kIdle;
                done(status);
                return;
              }
              if (owner.id == id_) {
                // The deterministic position is already occupied (paper
                // §5.2.2: "the one that first integrates succeeds").
                state_ = State::kIdle;
                done(Status::AlreadyExists(
                    "ring position held by peer " +
                    std::to_string(owner.peer)));
                return;
              }
              successors_.clear();
              MergeSuccessorCandidates({owner});
              state_ = State::kActive;
              // Warm-start the finger table from the successor (Chord's
              // join optimization); failures are harmless — periodic
              // fix-fingers repairs everything eventually.
              auto req = std::make_unique<ChordGetFingersMsg>();
              rpc_.Call(owner.peer, std::move(req), params_.rpc_timeout,
                        [this](const Status& s, MessagePtr resp) {
                          if (!s.ok()) return;
                          const auto& reply =
                              MessageCast<ChordFingersReplyMsg>(*resp);
                          for (const RingPeer& f : reply.fingers) {
                            PlaceFingerCandidate(f);
                          }
                        });
              NotifySuccessor();
              ScheduleStabilize();
              ProbeSuccessorSoon();
              done(Status::OK());
            });
}

void ChordNode::Leave() {
  if (state_ != State::kActive) {
    state_ = State::kIdle;
    return;
  }
  auto succ = successor();
  if (succ.has_value() && succ->peer != self_) {
    auto msg = std::make_unique<ChordLeaveMsg>();
    msg->has_predecessor = predecessor_.has_value();
    if (predecessor_.has_value()) msg->predecessor = *predecessor_;
    msg->successors = successors_;
    network_->Send(self_, succ->peer, std::move(msg));
  }
  if (predecessor_.has_value() && predecessor_->peer != self_ &&
      (!succ.has_value() || predecessor_->peer != succ->peer)) {
    auto msg = std::make_unique<ChordLeaveMsg>();
    msg->successors = successors_;
    network_->Send(self_, predecessor_->peer, std::move(msg));
  }
  state_ = State::kIdle;
  successors_.clear();
  predecessor_.reset();
  fingers_.ClearAll();
  // Fail outstanding lookups now instead of letting them time out.
  std::vector<LookupCallback> callbacks;
  callbacks.reserve(pending_lookups_.size());
  for (auto& pl : pending_lookups_) {
    network_->sim()->Cancel(pl.timeout_event);
    callbacks.push_back(std::move(pl.cb));
  }
  pending_lookups_.clear();
  for (auto& cb : callbacks) {
    cb(Status::Unavailable("node left the ring"), RingPeer{}, 0);
  }
}

// --- Lookups ---------------------------------------------------------------

uint64_t ChordNode::RegisterLookup(ChordId key, LookupCallback cb) {
  uint64_t lookup_id = network_->NextRpcId();
  PendingLookup pl;
  pl.id = lookup_id;
  pl.key = key;
  pl.cb = std::move(cb);
  pending_lookups_.push_back(std::move(pl));
  ++lookups_started_;
  return lookup_id;
}

ChordNode::PendingLookup* ChordNode::FindLookup(uint64_t lookup_id) {
  for (auto& pl : pending_lookups_) {
    if (pl.id == lookup_id) return &pl;
  }
  return nullptr;
}

void ChordNode::EraseLookup(uint64_t lookup_id) {
  for (size_t i = 0; i < pending_lookups_.size(); ++i) {
    if (pending_lookups_[i].id != lookup_id) continue;
    if (i != pending_lookups_.size() - 1) {
      pending_lookups_[i] = std::move(pending_lookups_.back());
    }
    pending_lookups_.pop_back();
    return;
  }
}

void ChordNode::Lookup(ChordId key, LookupCallback cb) {
  FLOWERCDN_CHECK(state_ == State::kActive) << "Lookup on inactive node";
  uint64_t lookup_id = RegisterLookup(key, std::move(cb));
  StartLookupAttempt(lookup_id);
}

void ChordNode::LookupVia(PeerId via, ChordId key, LookupCallback cb) {
  uint64_t lookup_id = RegisterLookup(key, std::move(cb));
  FindLookup(lookup_id)->via = via;
  StartLookupAttempt(lookup_id);
}

void ChordNode::StartLookupAttempt(uint64_t lookup_id) {
  PendingLookup* pl = FindLookup(lookup_id);
  if (pl == nullptr) return;
  ++pl->attempts;
  ArmLookupTimeout(lookup_id);
  if (pl->via.has_value()) {
    // Delegated lookup (pre-join): ship the query to the bootstrap peer.
    auto req = MakeFindSuccessor(pl->key, self_, lookup_id, 0);
    rpc_.Call(*pl->via, std::move(req), params_.rpc_timeout,
              [this, lookup_id](const Status& status, MessagePtr) {
                if (status.ok()) return;  // acked; answer will be routed
                // Unresponsive bootstrap: retry (or fail) immediately
                // instead of waiting out the full lookup timeout.
                PendingLookup* pl2 = FindLookup(lookup_id);
                if (pl2 == nullptr) return;
                network_->sim()->Cancel(pl2->timeout_event);
                if (pl2->attempts >= params_.max_lookup_attempts) {
                  CompleteLookupWithError(
                      lookup_id,
                      Status::Unavailable("lookup bootstrap unreachable"));
                  return;
                }
                StartLookupAttempt(lookup_id);
              });
    return;
  }
  if (state_ != State::kActive) {
    CompleteLookupWithError(lookup_id,
                            Status::FailedPrecondition("not in ring"));
    return;
  }
  ProcessLookupStep(pl->key, self_, lookup_id, 0);
}

void ChordNode::ArmLookupTimeout(uint64_t lookup_id) {
  PendingLookup* pl = FindLookup(lookup_id);
  if (pl == nullptr) return;
  pl->timeout_event = network_->SchedulePeer(
      self_, incarnation_, params_.lookup_timeout, [this, lookup_id]() {
        PendingLookup* pl2 = FindLookup(lookup_id);
        if (pl2 == nullptr) return;
        if (pl2->attempts >= params_.max_lookup_attempts) {
          CompleteLookupWithError(
              lookup_id, Status::TimedOut("lookup exhausted retries"));
          return;
        }
        StartLookupAttempt(lookup_id);
      });
}

void ChordNode::ProcessLookupStep(ChordId key, PeerId origin,
                                  uint64_t lookup_id, int hops) {
  if (hops > params_.max_lookup_hops) {
    FLOWERCDN_LOG(kDebug) << "dropping looping lookup for key " << key;
    return;  // origin recovers via its timeout
  }
  // Do we own the key outright?
  if (predecessor_.has_value() &&
      InIntervalOpenClosed(key, predecessor_->id, id_)) {
    SendLookupResult(origin, lookup_id, RingPeer{self_, id_}, hops);
    return;
  }
  auto succ = successor();
  if (!succ.has_value() || succ->peer == self_) {
    // Alone (or broken): best effort — we are the owner of everything we
    // know about.
    SendLookupResult(origin, lookup_id, RingPeer{self_, id_}, hops);
    return;
  }
  if (InIntervalOpenClosed(key, id_, succ->id)) {
    SendLookupResult(origin, lookup_id, *succ, hops);
    return;
  }
  ForwardLookup(key, origin, lookup_id, hops, /*attempt=*/1);
}

std::optional<RingPeer> ChordNode::NextHop(ChordId key) const {
  std::optional<RingPeer> best = fingers_.ClosestPreceding(key);
  // Successor-list entries can out-precede stale fingers.
  for (const RingPeer& s : successors_) {
    if (s.peer == self_) continue;
    if (!InIntervalOpenOpen(s.id, id_, key)) continue;
    if (!best.has_value() ||
        RingDistance(id_, s.id) > RingDistance(id_, best->id)) {
      best = s;
    }
  }
  return best;
}

void ChordNode::ForwardLookup(ChordId key, PeerId origin, uint64_t lookup_id,
                              int hops, int attempt) {
  std::optional<RingPeer> next = NextHop(key);
  if (!next.has_value()) {
    auto succ = successor();
    if (!succ.has_value() || succ->peer == self_) {
      SendLookupResult(origin, lookup_id, RingPeer{self_, id_}, hops);
      return;
    }
    next = succ;
  }
  PeerId next_peer = next->peer;
  auto req = MakeFindSuccessor(key, origin, lookup_id, hops + 1);
  rpc_.Call(next_peer, std::move(req), params_.rpc_timeout,
            [this, key, origin, lookup_id, hops, attempt, next_peer](
                const Status& status, MessagePtr) {
              if (status.ok()) return;  // hop acked; query is on its way
              RemoveDeadPeer(next_peer);
              if (attempt < params_.max_forward_attempts) {
                ForwardLookup(key, origin, lookup_id, hops, attempt + 1);
              }
            });
}

void ChordNode::SendLookupResult(PeerId origin, uint64_t lookup_id,
                                 RingPeer owner, int hops) {
  if (origin == self_) {
    CompleteLookup(lookup_id, owner, hops);
    return;
  }
  auto msg = std::make_unique<ChordLookupResultMsg>();
  msg->lookup_id = lookup_id;
  msg->owner = owner;
  msg->hops = hops;
  network_->Send(self_, origin, std::move(msg));
}

void ChordNode::CompleteLookup(uint64_t lookup_id, RingPeer owner, int hops) {
  PendingLookup* pl = FindLookup(lookup_id);
  if (pl == nullptr) return;  // duplicate/late result
  network_->sim()->Cancel(pl->timeout_event);
  LookupCallback cb = std::move(pl->cb);
  EraseLookup(lookup_id);
  cb(Status::OK(), owner, hops);
}

void ChordNode::CompleteLookupWithError(uint64_t lookup_id,
                                        const Status& status) {
  PendingLookup* pl = FindLookup(lookup_id);
  if (pl == nullptr) return;
  network_->sim()->Cancel(pl->timeout_event);
  LookupCallback cb = std::move(pl->cb);
  EraseLookup(lookup_id);
  ++lookups_failed_;
  cb(status, RingPeer{}, 0);
}

// --- Stabilization -----------------------------------------------------------

void ChordNode::ScheduleStabilize() {
  if (stabilize_scheduled_) return;
  stabilize_scheduled_ = true;
  network_->SchedulePeer(self_, incarnation_, params_.stabilize_period,
                         [this]() {
                           stabilize_scheduled_ = false;
                           if (state_ != State::kActive) return;
                           StabilizeRound();
                           ScheduleStabilize();
                         });
}

void ChordNode::StabilizeRound() {
  ++stabilize_rounds_;
  ProbeSuccessor();
  if (params_.predecessor_check_stride > 0 &&
      stabilize_rounds_ % params_.predecessor_check_stride == 0) {
    CheckPredecessor();
  }
  if (params_.finger_fix_stride > 0 &&
      stabilize_rounds_ % params_.finger_fix_stride == 0) {
    FixNextFinger();
  }
}

void ChordNode::ProbeSuccessor() {
  if (state_ != State::kActive) return;
  auto succ = successor();
  if (!succ.has_value()) {
    if (predecessor_.has_value() && predecessor_->peer != self_) {
      MergeSuccessorCandidates({*predecessor_});
    } else if (on_ring_broken) {
      on_ring_broken();
      return;
    }
    succ = successor();
    if (!succ.has_value()) return;
  }
  if (succ->peer == self_) {
    // Single-node ring (or healing a 2-ring through our predecessor).
    if (predecessor_.has_value() && predecessor_->peer != self_) {
      MergeSuccessorCandidates({*predecessor_});
      NotifySuccessor();
    }
    return;
  }
  RingPeer probed = *succ;
  auto req = std::make_unique<ChordGetNeighborsMsg>();
  rpc_.Call(probed.peer, std::move(req), params_.rpc_timeout,
            [this, probed](const Status& status, MessagePtr resp) {
              if (!status.ok()) {
                RemoveDeadPeer(probed.peer);
                // Try the next successor-list entry promptly.
                ProbeSuccessorSoon();
                return;
              }
              HandleNeighborsReply(
                  MessageCast<ChordNeighborsReplyMsg>(*resp), probed);
            });
}

void ChordNode::ProbeSuccessorSoon() {
  if (probe_soon_pending_ || state_ != State::kActive) return;
  probe_soon_pending_ = true;
  // Small jitter keeps simultaneous joiners from lock-stepping.
  SimDuration delay = 50 + static_cast<SimDuration>(self_ % 97);
  network_->SchedulePeer(self_, incarnation_, delay, [this]() {
    probe_soon_pending_ = false;
    if (state_ != State::kActive) return;
    ProbeSuccessor();
  });
}

void ChordNode::HandleNeighborsReply(const ChordNeighborsReplyMsg& reply,
                                     RingPeer probed) {
  std::optional<RingPeer> before = successor();
  std::vector<RingPeer> candidates = reply.successors;
  candidates.push_back(probed);
  if (reply.has_predecessor) candidates.push_back(reply.predecessor);
  MergeSuccessorCandidates(candidates);
  NotifySuccessor();
  std::optional<RingPeer> after = successor();
  if (!after.has_value() || after->peer == self_) return;
  if (!before.has_value() || !(*after == *before)) {
    // The successor changed — walk the chain to the true neighbor without
    // waiting a full stabilize period.
    ProbeSuccessorSoon();
  } else if (!reply.has_predecessor || reply.predecessor.peer != self_) {
    // Successor stable but it has not acknowledged us as its predecessor
    // yet (our notify is in flight, or a closer peer is joining between
    // us): probe again shortly until the link is confirmed.
    ProbeSuccessorSoon();
  }
}

void ChordNode::NotifySuccessor() {
  auto succ = successor();
  if (!succ.has_value() || succ->peer == self_) return;
  auto msg = std::make_unique<ChordNotifyMsg>();
  msg->notifier_id = id_;
  PeerId succ_peer = succ->peer;
  rpc_.Call(succ_peer, std::move(msg), params_.rpc_timeout,
            [this, succ_peer](const Status& status, MessagePtr resp) {
              if (!status.ok()) {
                RemoveDeadPeer(succ_peer);
                return;
              }
              const auto& reply = MessageCast<ChordNotifyReplyMsg>(*resp);
              if (!reply.duplicate_id && reply.has_predecessor &&
                  reply.predecessor.peer != self_ &&
                  InIntervalOpenOpen(reply.predecessor.id, id_,
                                     successors_.empty()
                                         ? id_
                                         : successors_.front().id)) {
                // A closer peer sits between us and our successor.
                MergeSuccessorCandidates({reply.predecessor});
                ProbeSuccessorSoon();
              }
              if (reply.duplicate_id) {
                // We lost a join race for this deterministic position.
                state_ = State::kIdle;
                successors_.clear();
                predecessor_.reset();
                fingers_.ClearAll();
                if (on_duplicate_id) on_duplicate_id();
              }
            });
}

void ChordNode::CheckPredecessor() {
  if (!predecessor_.has_value() || predecessor_->peer == self_) return;
  PeerId pred = predecessor_->peer;
  rpc_.Call(pred, std::make_unique<ChordPingMsg>(), params_.rpc_timeout,
            [this, pred](const Status& status, MessagePtr) {
              if (status.ok()) return;
              if (predecessor_.has_value() && predecessor_->peer == pred) {
                predecessor_.reset();
              }
            });
}

void ChordNode::FixNextFinger() {
  if (state_ != State::kActive) return;
  int j = next_finger_to_fix_;
  next_finger_to_fix_ = (next_finger_to_fix_ + 1) % fingers_.size();
  Lookup(fingers_.TargetOf(j),
         [this, j](const Status& status, RingPeer owner, int) {
           if (!status.ok()) return;
           // A self-owned target is stored as a self-entry (harmless for
           // routing — ClosestPreceding never returns it) so the slot does
           // not look permanently broken to the repair loop.
           fingers_.Set(j, owner);
         });
}

void ChordNode::ScheduleFingerRepair() {
  if (finger_repair_pending_ || state_ != State::kActive) return;
  finger_repair_pending_ = true;
  network_->SchedulePeer(self_, incarnation_, 200, [this]() {
    finger_repair_pending_ = false;
    if (state_ != State::kActive) return;
    for (int j = 0; j < fingers_.size(); ++j) {
      if (fingers_.entry(j).has_value()) continue;
      Lookup(fingers_.TargetOf(j),
             [this, j](const Status& status, RingPeer owner, int) {
               if (status.ok()) fingers_.Set(j, owner);
               // More holes? Keep repairing.
               ScheduleFingerRepair();
             });
      return;  // one targeted repair at a time
    }
  });
}

void ChordNode::PlaceFingerCandidate(const RingPeer& candidate) {
  if (candidate.peer == self_ || candidate.peer == kInvalidPeer) return;
  for (int j = 0; j < fingers_.size(); ++j) {
    ChordId target = fingers_.TargetOf(j);
    const auto& current = fingers_.entry(j);
    if (!current.has_value() ||
        RingDistance(target, candidate.id) <
            RingDistance(target, current->id)) {
      fingers_.Set(j, candidate);
    }
  }
}

void ChordNode::MergeSuccessorCandidates(
    const std::vector<RingPeer>& candidates) {
  std::vector<RingPeer> merged = successors_;
  merged.insert(merged.end(), candidates.begin(), candidates.end());
  std::vector<RingPeer> clean;
  clean.reserve(merged.size());
  for (const RingPeer& c : merged) {
    if (c.peer == kInvalidPeer) continue;
    if (c.peer == self_) continue;       // re-added below if list is empty
    if (c.id == id_) continue;           // duplicate-position claimant
    bool dup = false;
    for (const RingPeer& k : clean) {
      if (k.peer == c.peer) {
        dup = true;
        break;
      }
    }
    if (!dup) clean.push_back(c);
  }
  std::sort(clean.begin(), clean.end(), [this](const RingPeer& a,
                                               const RingPeer& b) {
    return RingDistance(id_, a.id) < RingDistance(id_, b.id);
  });
  if (clean.size() > static_cast<size_t>(params_.successor_list_size)) {
    clean.resize(params_.successor_list_size);
  }
  if (clean.empty()) {
    // Nothing else known: we are our own successor (single-node ring).
    clean.push_back(RingPeer{self_, id_});
  }
  successors_ = std::move(clean);
  // Every live contact is also a finger candidate.
  for (const RingPeer& s : successors_) PlaceFingerCandidate(s);
}

void ChordNode::RemoveDeadPeer(PeerId peer) {
  if (peer == self_) return;
  if (fingers_.RemovePeer(peer) > 0) ScheduleFingerRepair();
  successors_.erase(
      std::remove_if(successors_.begin(), successors_.end(),
                     [peer](const RingPeer& p) { return p.peer == peer; }),
      successors_.end());
  if (predecessor_.has_value() && predecessor_->peer == peer) {
    predecessor_.reset();
  }
  if (successors_.empty()) {
    if (predecessor_.has_value() && predecessor_->peer != self_) {
      successors_.push_back(*predecessor_);
    } else if (state_ == State::kActive && on_ring_broken) {
      on_ring_broken();
      return;
    }
  }
  // Re-validate the (possibly new) successor promptly.
  if (state_ == State::kActive) ProbeSuccessorSoon();
}

// --- Message handling --------------------------------------------------------

bool ChordNode::HandleMessage(MessagePtr& msg) {
  if (msg->is_response) return rpc_.HandleResponse(msg);
  if (!IsChordMessage(msg->type)) return false;
  switch (msg->type) {
    case kChordFindSuccessor:
      OnFindSuccessor(std::move(msg));
      return true;
    case kChordLookupResult:
      OnLookupResult(MessageCast<ChordLookupResultMsg>(*msg));
      return true;
    case kChordGetNeighbors:
      OnGetNeighbors(*msg);
      return true;
    case kChordNotify:
      OnNotify(*msg);
      return true;
    case kChordGetFingers:
      OnGetFingers(*msg);
      return true;
    case kChordPing:
      rpc_.Respond(*msg, std::make_unique<ChordPongMsg>());
      return true;
    case kChordLeave:
      OnLeave(*msg);
      return true;
    default:
      return true;  // unknown chord-range message: consume and drop
  }
}

void ChordNode::OnFindSuccessor(MessagePtr msg) {
  const auto& req = MessageCast<ChordFindSuccessorMsg>(*msg);
  if (state_ != State::kActive) {
    // Not routable (joining or left): stay silent so the sender's ack
    // timeout makes it re-route around us quickly.
    return;
  }
  if (req.rpc_id != 0) {
    rpc_.Respond(req, std::make_unique<ChordForwardAckMsg>());
  }
  ProcessLookupStep(req.key, req.origin, req.lookup_id, req.hops);
}

void ChordNode::OnLookupResult(const ChordLookupResultMsg& msg) {
  CompleteLookup(msg.lookup_id, msg.owner, msg.hops);
}

void ChordNode::OnGetNeighbors(const Message& req) {
  auto reply = std::make_unique<ChordNeighborsReplyMsg>();
  reply->has_predecessor = predecessor_.has_value();
  if (predecessor_.has_value()) reply->predecessor = *predecessor_;
  reply->successors = successors_;
  rpc_.Respond(req, std::move(reply));
}

void ChordNode::OnNotify(const Message& req) {
  const auto& m = MessageCast<ChordNotifyMsg>(req);
  auto reply = std::make_unique<ChordNotifyReplyMsg>();
  if (m.notifier_id == id_ && m.src != self_) {
    reply->duplicate_id = true;
  } else if (predecessor_.has_value() && predecessor_->id == m.notifier_id &&
             predecessor_->peer != m.src) {
    // Two distinct peers claim the same ring position; the incumbent wins.
    reply->duplicate_id = true;
  } else if (!predecessor_.has_value() || predecessor_->peer == m.src ||
             InIntervalOpenOpen(m.notifier_id, predecessor_->id, id_)) {
    std::optional<RingPeer> old = predecessor_;
    predecessor_ = RingPeer{m.src, m.notifier_id};
    if ((!old.has_value() || old->peer != m.src) && on_predecessor_changed) {
      on_predecessor_changed(old, *predecessor_);
    }
  }
  reply->has_predecessor = predecessor_.has_value();
  if (predecessor_.has_value()) reply->predecessor = *predecessor_;
  rpc_.Respond(req, std::move(reply));
}

void ChordNode::OnGetFingers(const Message& req) {
  auto reply = std::make_unique<ChordFingersReplyMsg>();
  for (int j = 0; j < fingers_.size(); ++j) {
    if (fingers_.entry(j).has_value()) {
      reply->fingers.push_back(*fingers_.entry(j));
    }
  }
  for (const RingPeer& s : successors_) reply->fingers.push_back(s);
  rpc_.Respond(req, std::move(reply));
}

void ChordNode::OnLeave(const Message& msg) {
  const auto& m = MessageCast<ChordLeaveMsg>(msg);
  std::vector<RingPeer> candidates = m.successors;
  if (m.has_predecessor) candidates.push_back(m.predecessor);
  MergeSuccessorCandidates(candidates);
  if (predecessor_.has_value() && predecessor_->peer == msg.src) {
    if (m.has_predecessor && m.predecessor.peer != self_) {
      predecessor_ = m.predecessor;
    } else {
      predecessor_.reset();
    }
  }
  RemoveDeadPeer(msg.src);
}

}  // namespace flowercdn
