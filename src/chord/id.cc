#include "chord/id.h"

#include "util/hash.h"

namespace flowercdn {

ChordId ChordHash(std::string_view name) { return Hash64(name); }

}  // namespace flowercdn
