#include "chord/id.h"

#include "util/hash.h"

namespace flowercdn {

bool InIntervalOpenClosed(ChordId x, ChordId a, ChordId b) {
  if (a == b) return true;  // full circle
  if (a < b) return x > a && x <= b;
  return x > a || x <= b;  // wrapped
}

bool InIntervalOpenOpen(ChordId x, ChordId a, ChordId b) {
  if (a == b) return x != a;  // full circle minus the endpoint
  if (a < b) return x > a && x < b;
  return x > a || x < b;  // wrapped
}

ChordId RingDistance(ChordId from, ChordId to) {
  return to - from;  // modular arithmetic of unsigned types
}

ChordId ChordHash(std::string_view name) { return Hash64(name); }

}  // namespace flowercdn
