#ifndef FLOWERCDN_CHORD_ID_H_
#define FLOWERCDN_CHORD_ID_H_

#include <cstdint>
#include <string_view>

#include "sim/types.h"

namespace flowercdn {

/// Position on the Chord identifier circle. We use the full 64-bit space
/// (the paper's D-ring key management only needs ordering and adjacency,
/// which any width provides).
using ChordId = uint64_t;

/// A reference to a ring member: its network identity plus ring position.
struct RingPeer {
  PeerId peer = kInvalidPeer;
  ChordId id = 0;

  friend bool operator==(const RingPeer& a, const RingPeer& b) {
    return a.peer == b.peer && a.id == b.id;
  }
};

// The interval predicates and RingDistance are defined inline: routing
// calls them hundreds of millions of times per long trial (every finger
// scan and every successor check), and the call overhead of out-of-line
// definitions showed up in kernel profiles.

/// True iff x lies in the half-open ring interval (a, b], walking clockwise
/// from a. When a == b the interval covers the whole circle (single-node
/// ring owns every key) — the Chord convention.
inline bool InIntervalOpenClosed(ChordId x, ChordId a, ChordId b) {
  if (a == b) return true;  // full circle
  if (a < b) return x > a && x <= b;
  return x > a || x <= b;  // wrapped
}

/// True iff x lies in the open ring interval (a, b). When a == b the
/// interval is the whole circle minus the point a itself.
inline bool InIntervalOpenOpen(ChordId x, ChordId a, ChordId b) {
  if (a == b) return x != a;  // full circle minus the endpoint
  if (a < b) return x > a && x < b;
  return x > a || x < b;  // wrapped
}

/// Clockwise distance from `from` to `to` (0 when equal).
inline ChordId RingDistance(ChordId from, ChordId to) {
  return to - from;  // modular arithmetic of unsigned types
}

/// Hashes an arbitrary name onto the ring (used by Squirrel for object home
/// nodes and for hashing peer identities).
ChordId ChordHash(std::string_view name);

}  // namespace flowercdn

#endif  // FLOWERCDN_CHORD_ID_H_
