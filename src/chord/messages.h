#ifndef FLOWERCDN_CHORD_MESSAGES_H_
#define FLOWERCDN_CHORD_MESSAGES_H_

#include <vector>

#include "chord/id.h"
#include "sim/message.h"

namespace flowercdn {

/// Wire messages of the Chord protocol (range [kChordMessageBase,
/// kChordMessageBase + 100)).
enum ChordMessageType : MessageType {
  kChordFindSuccessor = kChordMessageBase + 0,
  kChordForwardAck = kChordMessageBase + 1,
  kChordLookupResult = kChordMessageBase + 2,
  kChordGetNeighbors = kChordMessageBase + 3,
  kChordNeighborsReply = kChordMessageBase + 4,
  kChordNotify = kChordMessageBase + 5,
  kChordNotifyReply = kChordMessageBase + 6,
  kChordGetFingers = kChordMessageBase + 7,
  kChordFingersReply = kChordMessageBase + 8,
  kChordPing = kChordMessageBase + 9,
  kChordPong = kChordMessageBase + 10,
  kChordLeave = kChordMessageBase + 11,
};

/// True if `t` belongs to the Chord protocol range.
inline bool IsChordMessage(MessageType t) {
  return t >= kChordMessageBase && t < kChordMessageBase + 100;
}

/// Modeled size of the optional-predecessor + successor-list payload
/// shared by the stabilization reply and the graceful-leave handoff (1-byte
/// flag + 16-byte RingPeer each).
inline size_t NeighborListBytes(const std::vector<RingPeer>& successors) {
  return 17 + 16 * successors.size();
}

/// Recursive lookup step: forwarded hop by hop toward successor(key). The
/// receiving hop immediately acks (failure detection) and either answers
/// the origin directly or forwards further.
struct ChordFindSuccessorMsg : Message {
  ChordFindSuccessorMsg() { type = kChordFindSuccessor; }
  size_t SizeBytes() const override { return kHeaderBytes + 28; }
  ChordId key = 0;
  PeerId origin = kInvalidPeer;
  uint64_t lookup_id = 0;
  int hops = 0;
};

/// Per-hop ack for a forwarded ChordFindSuccessorMsg.
struct ChordForwardAckMsg : Message {
  ChordForwardAckMsg() { type = kChordForwardAck; }
};

/// Final answer of a lookup, sent directly to the origin.
struct ChordLookupResultMsg : Message {
  ChordLookupResultMsg() { type = kChordLookupResult; }
  size_t SizeBytes() const override { return kHeaderBytes + 28; }
  uint64_t lookup_id = 0;
  RingPeer owner;
  int hops = 0;
};

/// Stabilization probe: "who is your predecessor, and give me your
/// successor list" in one round trip.
struct ChordGetNeighborsMsg : Message {
  ChordGetNeighborsMsg() { type = kChordGetNeighbors; }
};

struct ChordNeighborsReplyMsg : Message {
  ChordNeighborsReplyMsg() { type = kChordNeighborsReply; }
  size_t SizeBytes() const override {
    return kHeaderBytes + NeighborListBytes(successors);
  }
  bool has_predecessor = false;
  RingPeer predecessor;
  std::vector<RingPeer> successors;
};

/// "I believe I am your predecessor."
struct ChordNotifyMsg : Message {
  ChordNotifyMsg() { type = kChordNotify; }
  ChordId notifier_id = 0;
};

struct ChordNotifyReplyMsg : Message {
  ChordNotifyReplyMsg() { type = kChordNotifyReply; }
  /// Set when the notifier's ring id equals the receiver's: two peers
  /// claimed the same deterministic D-ring position (the join race of
  /// §5.2.2); the notifier must abort its join.
  bool duplicate_id = false;
  /// The receiver's predecessor after processing the notify. When it is
  /// not the notifier itself, a closer peer sits between the two — the
  /// notifier adopts it immediately instead of waiting a stabilize period.
  bool has_predecessor = false;
  RingPeer predecessor;
};

/// Finger-table warm start for a fresh joiner.
struct ChordGetFingersMsg : Message {
  ChordGetFingersMsg() { type = kChordGetFingers; }
};

struct ChordFingersReplyMsg : Message {
  ChordFingersReplyMsg() { type = kChordFingersReply; }
  size_t SizeBytes() const override {
    return kHeaderBytes + 16 * fingers.size();
  }
  std::vector<RingPeer> fingers;  // populated entries only
};

struct ChordPingMsg : Message {
  ChordPingMsg() { type = kChordPing; }
};

struct ChordPongMsg : Message {
  ChordPongMsg() { type = kChordPong; }
};

/// Graceful departure: hands neighbors the leaver's links so the ring heals
/// without waiting for timeouts.
struct ChordLeaveMsg : Message {
  ChordLeaveMsg() { type = kChordLeave; }
  size_t SizeBytes() const override {
    return kHeaderBytes + NeighborListBytes(successors);
  }
  bool has_predecessor = false;
  RingPeer predecessor;
  std::vector<RingPeer> successors;
};

}  // namespace flowercdn

#endif  // FLOWERCDN_CHORD_MESSAGES_H_
