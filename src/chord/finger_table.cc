#include "chord/finger_table.h"

#include "util/logging.h"

namespace flowercdn {

FingerTable::FingerTable(ChordId self, int count) : self_(self) {
  FLOWERCDN_CHECK(count >= 1 && count <= 64);
  const int low_bit = 64 - count;
  targets_.reserve(count);
  for (int j = 0; j < count; ++j) {
    targets_.push_back(self_ + (ChordId{1} << (low_bit + j)));  // modular add
  }
  entries_.resize(count);
}

void FingerTable::ClearAll() {
  for (auto& e : entries_) e.reset();
}

int FingerTable::RemovePeer(PeerId peer) {
  int removed = 0;
  for (auto& e : entries_) {
    if (e.has_value() && e->peer == peer) {
      e.reset();
      ++removed;
    }
  }
  return removed;
}

std::optional<RingPeer> FingerTable::ClosestPreceding(ChordId key) const {
  for (int j = size() - 1; j >= 0; --j) {
    const auto& e = entries_[j];
    if (e.has_value() && InIntervalOpenOpen(e->id, self_, key)) {
      return e;
    }
  }
  return std::nullopt;
}

int FingerTable::populated() const {
  int n = 0;
  for (const auto& e : entries_) n += e.has_value() ? 1 : 0;
  return n;
}

}  // namespace flowercdn
