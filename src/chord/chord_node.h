#ifndef FLOWERCDN_CHORD_CHORD_NODE_H_
#define FLOWERCDN_CHORD_CHORD_NODE_H_

#include <functional>
#include <optional>
#include <vector>

#include "chord/finger_table.h"
#include "chord/id.h"
#include "chord/messages.h"
#include "sim/network.h"
#include "sim/rpc.h"
#include "util/status.h"

namespace flowercdn {

/// One Chord protocol endpoint (Stoica et al., SIGCOMM'01) — the DHT
/// substrate of both the paper's D-ring and the Squirrel baseline.
///
/// Implemented features:
///  * recursive lookups with per-hop acknowledgements: a hop that forwards
///    a query immediately detects (by ack timeout) that the next hop died,
///    prunes it and re-forwards — plus an end-to-end retry at the origin;
///  * periodic stabilization (successor-list refresh, notify, predecessor
///    liveness check, round-robin finger repair);
///  * join with finger warm-start from the successor, including detection
///    of an occupied ring position (needed by the D-ring's deterministic
///    key placement, paper §5.2.2);
///  * graceful leave handing links to the neighbors.
///
/// The node is a component: a host object (FlowerPeer / SquirrelPeer) owns
/// it, attaches itself to the network and feeds chord-range messages into
/// HandleMessage().
class ChordNode {
 public:
  struct Params {
    /// Period of the stabilization timer (the Chord paper's recommended
    /// order of magnitude; successor-change-triggered probes make the ring
    /// converge much faster than this between periods).
    SimDuration stabilize_period = 30 * kSecond;
    /// Timeout of one control RPC (ack, neighbors probe, notify...).
    /// Must exceed the worst-case round trip of the topology.
    SimDuration rpc_timeout = 800 * kMillisecond;
    /// End-to-end deadline for one lookup attempt.
    SimDuration lookup_timeout = 6 * kSecond;
    /// Lookup attempts before reporting failure to the caller.
    int max_lookup_attempts = 3;
    /// Re-forward attempts per hop before giving up on a stuck query.
    int max_forward_attempts = 3;
    int successor_list_size = 8;
    /// Number of (top) fingers maintained; lower fingers collapse onto the
    /// successor for any realistic population.
    int finger_count = 20;
    /// Fix one finger every this many stabilize rounds.
    int finger_fix_stride = 2;
    /// Ping the predecessor every this many stabilize rounds.
    int predecessor_check_stride = 2;
    /// Safety valve against routing loops in a corrupted ring.
    int max_lookup_hops = 96;
  };

  enum class State { kIdle, kJoining, kActive };

  /// `owner` is meaningful iff `status.ok()`; `hops` counts forwarding
  /// steps taken by the winning attempt.
  using LookupCallback =
      std::function<void(const Status& status, RingPeer owner, int hops)>;
  using JoinCallback = std::function<void(const Status& status)>;

  ChordNode(Network* network, PeerId self, ChordId id, const Params& params);
  ChordNode(const ChordNode&) = delete;
  ChordNode& operator=(const ChordNode&) = delete;

  /// Associates the node with the host's network incarnation. Must be
  /// called after Network::Attach and before any protocol activity.
  void Bind(Incarnation incarnation);

  /// Bootstraps a brand-new ring containing only this node.
  void CreateRing();

  /// Joins the ring through any live member. Fails with AlreadyExists if a
  /// live node already occupies this exact ring id (D-ring position taken),
  /// Unavailable/TimedOut if the bootstrap cannot be reached.
  void Join(PeerId bootstrap, JoinCallback done);

  /// Graceful departure: hands links to neighbors and goes idle. The host
  /// remains attached to the network (app-level transfer may follow).
  void Leave();

  /// Resolves successor(key). Must be in state kActive.
  void Lookup(ChordId key, LookupCallback cb);

  /// Resolves successor(key) by delegating the query to `via` — used before
  /// joining, when this node cannot route itself.
  void LookupVia(PeerId via, ChordId key, LookupCallback cb);

  /// Feeds a message to the protocol. Returns true if consumed.
  bool HandleMessage(MessagePtr& msg);

  /// Invoked when every successor candidate was lost — the ring is broken
  /// from this node's perspective and the application should re-join.
  std::function<void()> on_ring_broken;

  /// Invoked when another live node turns out to hold this node's exact
  /// ring id (lost join race, paper §5.2.2). The node has already reverted
  /// to kIdle when this fires.
  std::function<void()> on_duplicate_id;

  /// Invoked when the predecessor changes to a *different peer* — the
  /// moment at which part of this node's key range moves to the new
  /// predecessor. Applications storing per-key state (Squirrel home
  /// directories) hand the affected keys over here, as in the Chord
  /// paper's key-transfer-on-join.
  std::function<void(const std::optional<RingPeer>& old_predecessor,
                     const RingPeer& new_predecessor)>
      on_predecessor_changed;

  // --- Introspection (tests, stats) ---------------------------------------
  State state() const { return state_; }
  bool active() const { return state_ == State::kActive; }
  PeerId self() const { return self_; }
  ChordId id() const { return id_; }
  std::optional<RingPeer> successor() const;
  const std::optional<RingPeer>& predecessor() const { return predecessor_; }
  const std::vector<RingPeer>& successor_list() const { return successors_; }
  /// Up to `limit` distinct non-self successors in ring order — the
  /// deterministic replica set of the key range this node owns (used by
  /// the Flower directory replication layer).
  std::vector<RingPeer> DistinctSuccessors(size_t limit) const;
  const FingerTable& fingers() const { return fingers_; }
  const Params& params() const { return params_; }
  uint64_t lookups_started() const { return lookups_started_; }
  uint64_t lookups_failed() const { return lookups_failed_; }
  uint64_t stabilize_rounds() const { return stabilize_rounds_; }

 private:
  struct PendingLookup {
    uint64_t id = 0;
    ChordId key = 0;
    LookupCallback cb;
    /// Set for delegated (pre-join) lookups routed through a bootstrap.
    std::optional<PeerId> via;
    int attempts = 0;
    EventId timeout_event = kInvalidEvent;
  };

  // Lookup machinery.
  uint64_t RegisterLookup(ChordId key, LookupCallback cb);
  /// Entry for an in-flight lookup, or null. Pointers stay valid until the
  /// next RegisterLookup/EraseLookup.
  PendingLookup* FindLookup(uint64_t lookup_id);
  /// Swap-with-back removal; no-op for unknown ids.
  void EraseLookup(uint64_t lookup_id);
  void StartLookupAttempt(uint64_t lookup_id);
  void ArmLookupTimeout(uint64_t lookup_id);
  void ProcessLookupStep(ChordId key, PeerId origin, uint64_t lookup_id,
                         int hops);
  void ForwardLookup(ChordId key, PeerId origin, uint64_t lookup_id, int hops,
                     int attempt);
  void SendLookupResult(PeerId origin, uint64_t lookup_id, RingPeer owner,
                        int hops);
  void CompleteLookup(uint64_t lookup_id, RingPeer owner, int hops);
  void CompleteLookupWithError(uint64_t lookup_id, const Status& status);
  /// Best next hop strictly preceding `key` (fingers + successor list).
  std::optional<RingPeer> NextHop(ChordId key) const;

  // Stabilization machinery.
  void ScheduleStabilize();
  void StabilizeRound();
  /// One GetNeighbors probe of the current successor (the core of a
  /// stabilize round).
  void ProbeSuccessor();
  /// Schedules a near-immediate ProbeSuccessor — used whenever the
  /// successor just changed so chains of fresh joiners converge at network
  /// speed instead of one hop per stabilize period.
  void ProbeSuccessorSoon();
  void HandleNeighborsReply(const ChordNeighborsReplyMsg& reply,
                            RingPeer probed);
  void NotifySuccessor();
  void CheckPredecessor();
  void FixNextFinger();
  /// Repairs finger slots emptied by failure pruning with targeted lookups
  /// (one at a time) instead of waiting for the round-robin refresh.
  void ScheduleFingerRepair();
  /// Installs `candidate` into any finger slot it improves (closest known
  /// node clockwise of the slot's target).
  void PlaceFingerCandidate(const RingPeer& candidate);
  /// Merges candidates into the successor list (sorted by clockwise
  /// distance from self, deduplicated, truncated).
  void MergeSuccessorCandidates(const std::vector<RingPeer>& candidates);
  void RemoveDeadPeer(PeerId peer);

  // Message handlers.
  void OnFindSuccessor(MessagePtr msg);
  void OnGetNeighbors(const Message& req);
  void OnNotify(const Message& req);
  void OnGetFingers(const Message& req);
  void OnLeave(const Message& msg);
  void OnLookupResult(const ChordLookupResultMsg& msg);

  Network* network_;
  PeerId self_;
  ChordId id_;
  Params params_;
  RpcEndpoint rpc_;
  Incarnation incarnation_ = 0;

  State state_ = State::kIdle;
  std::vector<RingPeer> successors_;
  std::optional<RingPeer> predecessor_;
  FingerTable fingers_;
  int next_finger_to_fix_ = 0;
  uint64_t stabilize_rounds_ = 0;
  bool stabilize_scheduled_ = false;
  bool probe_soon_pending_ = false;
  bool finger_repair_pending_ = false;

  // Flat table: a node rarely has more than a handful of lookups in
  // flight, so a linear scan beats hashing and per-entry node allocation.
  std::vector<PendingLookup> pending_lookups_;
  uint64_t lookups_started_ = 0;
  uint64_t lookups_failed_ = 0;
};

}  // namespace flowercdn

#endif  // FLOWERCDN_CHORD_CHORD_NODE_H_
