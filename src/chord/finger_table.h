#ifndef FLOWERCDN_CHORD_FINGER_TABLE_H_
#define FLOWERCDN_CHORD_FINGER_TABLE_H_

#include <optional>
#include <vector>

#include "chord/id.h"

namespace flowercdn {

/// Chord finger table holding long-range routing shortcuts. Finger j aims
/// at successor(self + 2^(64 - count + j)): we only keep the top `count`
/// fingers because for realistic ring populations (<= a few million nodes)
/// all lower fingers collapse onto the immediate successor.
class FingerTable {
 public:
  /// `count` in [1, 64].
  FingerTable(ChordId self, int count);

  int size() const { return static_cast<int>(entries_.size()); }

  /// Ring point finger j aims at. Precomputed at construction — this sits
  /// on the stabilization and lookup hot paths, called ~100M times per
  /// long trial.
  ChordId TargetOf(int j) const { return targets_[j]; }

  const std::optional<RingPeer>& entry(int j) const { return entries_[j]; }

  void Set(int j, RingPeer peer) { entries_[j] = peer; }
  void Clear(int j) { entries_[j].reset(); }
  void ClearAll();

  /// Drops every entry pointing at `peer` (called when the peer is
  /// detected dead). Returns how many entries were cleared.
  int RemovePeer(PeerId peer);

  /// The finger with the highest id strictly inside (self, key): the
  /// classic closest_preceding_finger step. Empty when no finger helps
  /// (caller then falls back to its successor).
  std::optional<RingPeer> ClosestPreceding(ChordId key) const;

  /// Number of populated entries.
  int populated() const;

 private:
  ChordId self_;
  std::vector<ChordId> targets_;  // targets_[j] = self + 2^(64 - count + j)
  std::vector<std::optional<RingPeer>> entries_;
};

}  // namespace flowercdn

#endif  // FLOWERCDN_CHORD_FINGER_TABLE_H_
