#include "gossip/view.h"

#include <algorithm>

namespace flowercdn {

bool PeerView::Contains(PeerId peer) const {
  for (const Contact& c : contacts_) {
    if (c.peer == peer) return true;
  }
  return false;
}

void PeerView::Upsert(Contact contact) {
  if (contact.peer == kInvalidPeer) return;
  for (Contact& c : contacts_) {
    if (c.peer == contact.peer) {
      c.age = std::min(c.age, contact.age);
      return;
    }
  }
  if (capacity_ > 0 && contacts_.size() >= capacity_) {
    // Evict the oldest entry if it is staler than the newcomer.
    auto oldest = std::max_element(
        contacts_.begin(), contacts_.end(),
        [](const Contact& a, const Contact& b) { return a.age < b.age; });
    if (oldest == contacts_.end() || oldest->age < contact.age) return;
    *oldest = contact;
    return;
  }
  contacts_.push_back(contact);
}

bool PeerView::Remove(PeerId peer) {
  auto it = std::remove_if(contacts_.begin(), contacts_.end(),
                           [peer](const Contact& c) { return c.peer == peer; });
  bool removed = it != contacts_.end();
  contacts_.erase(it, contacts_.end());
  return removed;
}

void PeerView::AgeAll() {
  for (Contact& c : contacts_) ++c.age;
}

std::optional<Contact> PeerView::Oldest() const {
  if (contacts_.empty()) return std::nullopt;
  return *std::max_element(
      contacts_.begin(), contacts_.end(),
      [](const Contact& a, const Contact& b) { return a.age < b.age; });
}

std::optional<Contact> PeerView::Random(Rng& rng) const {
  if (contacts_.empty()) return std::nullopt;
  return contacts_[rng.Index(contacts_.size())];
}

std::vector<Contact> PeerView::RandomSubset(size_t n, Rng& rng,
                                            PeerId exclude) const {
  std::vector<Contact> pool;
  pool.reserve(contacts_.size());
  for (const Contact& c : contacts_) {
    if (c.peer != exclude) pool.push_back(c);
  }
  rng.Shuffle(pool);
  if (pool.size() > n) pool.resize(n);
  return pool;
}

void PeerView::Merge(const std::vector<Contact>& batch, PeerId self) {
  for (const Contact& c : batch) {
    if (c.peer == self) continue;
    Upsert(c);
  }
}

}  // namespace flowercdn
