#include "gossip/cyclon.h"

#include <utility>

#include "util/logging.h"

namespace flowercdn {

CyclonNode::CyclonNode(Network* network, PeerId self, Rng rng,
                       const Params& params)
    : network_(network),
      self_(self),
      rng_(rng),
      params_(params),
      rpc_(network, self),
      view_(params.view_size) {
  FLOWERCDN_CHECK(params.shuffle_length >= 1);
  FLOWERCDN_CHECK(params.view_size >= params.shuffle_length);
}

void CyclonNode::Start(Incarnation incarnation) {
  incarnation_ = incarnation;
  rpc_.Bind(incarnation);
  running_ = true;
  ScheduleShuffle();
}

void CyclonNode::ScheduleShuffle() {
  // Desynchronize rounds across peers with a +-10% period jitter.
  SimDuration jitter = static_cast<SimDuration>(
      params_.period / 10 > 0 ? rng_.UniformInt(-(params_.period / 10),
                                                params_.period / 10)
                              : 0);
  network_->SchedulePeer(self_, incarnation_, params_.period + jitter,
                         [this]() {
                           if (!running_) return;
                           ShuffleRound();
                           ScheduleShuffle();
                         });
}

std::vector<Contact> CyclonNode::BuildSlice(PeerId partner,
                                            bool include_self) {
  std::vector<Contact> slice =
      view_.RandomSubset(params_.shuffle_length - (include_self ? 1 : 0),
                         rng_, partner);
  if (include_self) slice.push_back(Contact{self_, 0});
  return slice;
}

void CyclonNode::ShuffleRound() {
  view_.AgeAll();
  auto partner = view_.Oldest();
  if (!partner.has_value()) return;
  ++shuffles_initiated_;
  PeerId q = partner->peer;

  auto msg = std::make_unique<GossipShuffleMsg>();
  std::vector<Contact> sent = BuildSlice(q, /*include_self=*/true);
  msg->contacts = sent;

  rpc_.Call(q, std::move(msg), params_.rpc_timeout,
            [this, q, sent = std::move(sent)](const Status& status,
                                              MessagePtr resp) {
              if (!status.ok()) {
                // Dead partner: expel it — this is how Cyclon self-heals.
                view_.Remove(q);
                ++partners_expired_;
                return;
              }
              const auto& reply = MessageCast<GossipShuffleReplyMsg>(*resp);
              MergeSlice(reply.contacts, sent);
            });
}

void CyclonNode::MergeSlice(const std::vector<Contact>& received,
                            const std::vector<Contact>& sent) {
  for (const Contact& c : received) {
    if (c.peer == self_) continue;
    if (view_.Contains(c.peer)) {
      view_.Upsert(c);
      continue;
    }
    if (view_.capacity() == 0 || view_.size() < view_.capacity()) {
      view_.Upsert(c);
      continue;
    }
    // View full: make room by dropping one of the entries we shipped out
    // (Cyclon's swap rule), else fall back to Upsert's oldest-eviction.
    bool made_room = false;
    for (const Contact& s : sent) {
      if (s.peer != self_ && view_.Remove(s.peer)) {
        made_room = true;
        break;
      }
    }
    (void)made_room;
    view_.Upsert(c);
  }
}

bool CyclonNode::HandleMessage(MessagePtr& msg) {
  if (msg->is_response) return rpc_.HandleResponse(msg);
  if (msg->type != kGossipShuffle) return false;
  const auto& req = MessageCast<GossipShuffleMsg>(*msg);
  auto reply = std::make_unique<GossipShuffleReplyMsg>();
  std::vector<Contact> sent = BuildSlice(req.src, /*include_self=*/false);
  reply->contacts = sent;
  rpc_.Respond(req, std::move(reply));
  MergeSlice(req.contacts, sent);
  return true;
}

}  // namespace flowercdn
