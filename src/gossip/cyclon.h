#ifndef FLOWERCDN_GOSSIP_CYCLON_H_
#define FLOWERCDN_GOSSIP_CYCLON_H_

#include <memory>

#include "gossip/view.h"
#include "sim/message.h"
#include "sim/network.h"
#include "sim/node.h"
#include "sim/rpc.h"
#include "util/random.h"

namespace flowercdn {

/// Cyclon shuffle payload (Voulgaris, Gavidia, van Steen [17] — the
/// membership protocol family the paper's petal maintenance is "inspired
/// of" and proven robust under churn).
enum GossipMessageType : MessageType {
  kGossipShuffle = kGossipMessageBase + 0,
  kGossipShuffleReply = kGossipMessageBase + 1,
};

inline bool IsGossipMessage(MessageType t) {
  return t >= kGossipMessageBase && t < kGossipMessageBase + 100;
}

struct GossipShuffleMsg : Message {
  GossipShuffleMsg() { type = kGossipShuffle; }
  size_t SizeBytes() const override {
    return kHeaderBytes + ContactsBytes(contacts);
  }
  std::vector<Contact> contacts;
};

struct GossipShuffleReplyMsg : Message {
  GossipShuffleReplyMsg() { type = kGossipShuffleReply; }
  size_t SizeBytes() const override {
    return kHeaderBytes + ContactsBytes(contacts);
  }
  std::vector<Contact> contacts;
};

/// A standalone Cyclon membership endpoint: periodically shuffles a slice
/// of its bounded view with its oldest neighbor, keeping the overlay
/// connected and expelling dead pointers under churn. Provided both as a
/// reference implementation of the gossip substrate (tested and benchmarked
/// on its own) and as the blueprint the Flower petal gossip follows.
class CyclonNode {
 public:
  struct Params {
    size_t view_size = 20;
    /// Number of contacts exchanged per shuffle.
    size_t shuffle_length = 5;
    SimDuration period = 10 * kSecond;
    SimDuration rpc_timeout = 1200 * kMillisecond;
  };

  CyclonNode(Network* network, PeerId self, Rng rng, const Params& params);
  CyclonNode(const CyclonNode&) = delete;
  CyclonNode& operator=(const CyclonNode&) = delete;

  /// Binds to the host's incarnation and starts the periodic shuffle.
  void Start(Incarnation incarnation);

  /// Seeds the initial view.
  void AddNeighbor(PeerId peer) { view_.Upsert(Contact{peer, 0}); }

  /// Feeds a message; returns true if consumed.
  bool HandleMessage(MessagePtr& msg);

  const PeerView& view() const { return view_; }
  PeerId self() const { return self_; }
  uint64_t shuffles_initiated() const { return shuffles_initiated_; }
  uint64_t partners_expired() const { return partners_expired_; }

 private:
  void ScheduleShuffle();
  void ShuffleRound();
  /// Builds the outgoing slice: self (age 0) plus random others.
  std::vector<Contact> BuildSlice(PeerId partner, bool include_self);
  void MergeSlice(const std::vector<Contact>& received,
                  const std::vector<Contact>& sent);

  Network* network_;
  PeerId self_;
  Rng rng_;
  Params params_;
  RpcEndpoint rpc_;
  Incarnation incarnation_ = 0;
  PeerView view_;
  bool running_ = false;
  uint64_t shuffles_initiated_ = 0;
  uint64_t partners_expired_ = 0;
};

/// Minimal SimNode host wrapping a lone CyclonNode — used by tests and the
/// gossip micro-benchmarks.
class CyclonHost : public SimNode {
 public:
  CyclonHost(Network* network, PeerId self, Rng rng,
             const CyclonNode::Params& params)
      : cyclon_(network, self, rng, params) {}

  void HandleMessage(MessagePtr msg) override {
    cyclon_.HandleMessage(msg);
  }

  CyclonNode& cyclon() { return cyclon_; }

 private:
  CyclonNode cyclon_;
};

}  // namespace flowercdn

#endif  // FLOWERCDN_GOSSIP_CYCLON_H_
