#ifndef FLOWERCDN_GOSSIP_VIEW_H_
#define FLOWERCDN_GOSSIP_VIEW_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/types.h"
#include "util/random.h"

namespace flowercdn {

/// One membership pointer inside a partial view: a peer address plus an age
/// counter (gossip rounds since the information was fresh). Aging is the
/// heart of Cyclon-style self-healing — stale pointers grow old and get
/// shuffled out or validated.
struct Contact {
  PeerId peer = kInvalidPeer;
  uint32_t age = 0;
};

/// Modeled wire size of a contact list (8-byte peer + 4-byte age each) —
/// the single source for every message estimate that ships contacts, kept
/// in lockstep with the src/wire binary encoding.
inline size_t ContactsBytes(const std::vector<Contact>& contacts) {
  return 12 * contacts.size();
}

/// A partial view of a cluster: bounded or unbounded list of aged contacts.
/// Flower-CDN content peers keep a view of their petal(ws, loc); the paper
/// leaves views unbounded (they "never surpass 30" in the petal sizes
/// simulated) but the structure supports a cap for PetalUp-scale petals.
class PeerView {
 public:
  /// `capacity` == 0 means unbounded (the paper's configuration).
  explicit PeerView(size_t capacity = 0) : capacity_(capacity) {}

  size_t size() const { return contacts_.size(); }
  bool empty() const { return contacts_.empty(); }
  size_t capacity() const { return capacity_; }
  const std::vector<Contact>& contacts() const { return contacts_; }

  bool Contains(PeerId peer) const;

  /// Inserts or refreshes a contact; keeps the smaller age on refresh.
  /// When full, evicts the oldest contact if it is older than `contact`.
  void Upsert(Contact contact);

  /// Removes a peer; returns true if it was present.
  bool Remove(PeerId peer);

  /// Increments every age by one (start of a gossip round).
  void AgeAll();

  /// The contact with the largest age (gossip partner selection); nullopt
  /// when empty.
  std::optional<Contact> Oldest() const;

  /// A uniformly random contact.
  std::optional<Contact> Random(Rng& rng) const;

  /// Up to `n` distinct random contacts, optionally excluding one peer.
  std::vector<Contact> RandomSubset(size_t n, Rng& rng,
                                    PeerId exclude = kInvalidPeer) const;

  /// Merges a batch of received contacts: each is Upsert()ed, skipping
  /// `self` pointers.
  void Merge(const std::vector<Contact>& batch, PeerId self);

  void Clear() { contacts_.clear(); }

 private:
  size_t capacity_;
  std::vector<Contact> contacts_;
};

}  // namespace flowercdn

#endif  // FLOWERCDN_GOSSIP_VIEW_H_
