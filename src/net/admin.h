#ifndef FLOWERCDN_NET_ADMIN_H_
#define FLOWERCDN_NET_ADMIN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "net/event_loop.h"
#include "net/http.h"

namespace flowercdn {

/// The node's admin surface: three GET endpoints backed by callbacks the
/// NodeHost installs.
///
///     /metrics  Prometheus text exposition (obs StatsRegistry counters
///               and gauges plus the runtime latency summaries)
///     /statusz  JSON status snapshot (rank, hosted peers, sim time,
///               tcp/gateway/network counters, event-loop health)
///     /healthz  liveness probe, always "ok"
///
/// Handler only — transport-agnostic. The Gateway intercepts these paths
/// on its public port; AdminServer below serves them on a dedicated
/// `--admin-port` when the operator wants the admin plane off the data
/// path.
class AdminHandler {
 public:
  using TextFn = std::function<std::string()>;

  /// Renders the Prometheus exposition. Unset => /metrics is 404.
  void set_metrics_fn(TextFn fn) { metrics_fn_ = std::move(fn); }
  /// Renders the /statusz JSON document. Unset => /statusz is 404.
  void set_statusz_fn(TextFn fn) { statusz_fn_ = std::move(fn); }

  struct Response {
    int status = 200;
    const char* reason = "OK";
    const char* content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  /// True when `target` names an admin endpoint (the response is filled
  /// in); false for every other path — the caller serves those itself.
  bool Handle(const std::string& target, Response* out);

  uint64_t requests() const { return requests_; }

 private:
  TextFn metrics_fn_;
  TextFn statusz_fn_;
  uint64_t requests_ = 0;
};

/// Dedicated admin listener: a minimal keep-alive HTTP server that serves
/// only AdminHandler paths (anything else is 404). Synchronous — every
/// response is rendered inside the read callback — so it needs none of the
/// Gateway's busy/queue machinery.
class AdminServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;  // 0 = kernel-picked (see port())
    size_t max_connections = 64;
  };

  AdminServer(EventLoop* loop, AdminHandler* handler, Options options);
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;
  ~AdminServer();

  bool Listen();
  uint16_t port() const { return port_; }
  void CloseAll();
  size_t open_connections() const { return conns_.size(); }

 private:
  struct Conn {
    int fd = -1;
    HttpRequestParser parser;
    std::string out;
    size_t out_offset = 0;
    bool want_writable = false;
    bool close_after_write = false;
  };

  void AcceptReady();
  void OnReadable(uint64_t id);
  void TryFlush(uint64_t id);
  void CloseConn(uint64_t id);

  EventLoop* loop_;
  AdminHandler* handler_;
  Options options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, Conn> conns_;
};

}  // namespace flowercdn

#endif  // FLOWERCDN_NET_ADMIN_H_
