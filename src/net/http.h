#ifndef FLOWERCDN_NET_HTTP_H_
#define FLOWERCDN_NET_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace flowercdn {

/// Minimal HTTP/1.1 subset shared by the content gateway (server side) and
/// the load generator (client side): request line / status line, headers,
/// Content-Length framing, keep-alive. No chunked encoding, no bodies on
/// requests — the gateway speaks GET only, and rejects anything fancier
/// with a 4xx instead of guessing.

struct HttpHeader {
  std::string name;
  std::string value;
};

/// Case-insensitive header lookup; returns nullptr when absent.
const std::string* FindHeader(const std::vector<HttpHeader>& headers,
                              std::string_view name);

struct HttpRequest {
  std::string method;
  std::string target;
  std::string version;  // "HTTP/1.1"
  std::vector<HttpHeader> headers;

  const std::string* Header(std::string_view name) const {
    return FindHeader(headers, name);
  }
};

struct HttpResponse {
  int status = 0;
  std::string reason;
  std::vector<HttpHeader> headers;
  std::string body;

  const std::string* Header(std::string_view name) const {
    return FindHeader(headers, name);
  }
};

/// Incremental parser for a stream of bodyless requests (pipelining-safe):
/// feed whatever read() returned, pop complete requests in order. Latches
/// failed on malformed input or a request with a body — the connection
/// should then be answered with an error and closed.
class HttpRequestParser {
 public:
  /// `max_head_bytes` bounds one request head (request line + headers).
  explicit HttpRequestParser(size_t max_head_bytes = 16 * 1024)
      : max_head_bytes_(max_head_bytes) {}

  void Append(const char* data, size_t n);
  bool Next(HttpRequest* out);

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  size_t buffered_bytes() const { return buf_.size(); }

 private:
  void Fail(const std::string& reason);

  size_t max_head_bytes_;
  std::string buf_;
  bool failed_ = false;
  std::string error_;
};

/// Incremental parser for responses with Content-Length framing (what the
/// gateway emits). A response without Content-Length fails the stream.
class HttpResponseParser {
 public:
  explicit HttpResponseParser(size_t max_head_bytes = 16 * 1024,
                              size_t max_body_bytes = 8 * 1024 * 1024)
      : max_head_bytes_(max_head_bytes), max_body_bytes_(max_body_bytes) {}

  void Append(const char* data, size_t n);
  bool Next(HttpResponse* out);

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }

 private:
  void Fail(const std::string& reason);

  size_t max_head_bytes_;
  size_t max_body_bytes_;
  std::string buf_;
  bool failed_ = false;
  std::string error_;
};

/// Serializes a GET request (keep-alive implied by HTTP/1.1).
std::string BuildHttpRequest(std::string_view target,
                             const std::vector<HttpHeader>& headers = {});

/// Serializes a response; Content-Length is added automatically.
std::string BuildHttpResponse(int status, std::string_view reason,
                              const std::vector<HttpHeader>& headers,
                              std::string_view body);

}  // namespace flowercdn

#endif  // FLOWERCDN_NET_HTTP_H_
