#include "net/gateway.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "net/admin.h"
#include "net/clock.h"
#include "obs/stats.h"
#include "util/hash.h"
#include "util/logging.h"

namespace flowercdn {

namespace {

/// Parses a non-empty decimal segment; returns false on anything else.
bool ParseIndex(std::string_view s, uint32_t* out) {
  if (s.empty() || s.size() > 9) return false;
  uint32_t value = 0;
  for (char ch : s) {
    if (ch < '0' || ch > '9') return false;
    value = value * 10 + static_cast<uint32_t>(ch - '0');
  }
  *out = value;
  return true;
}

}  // namespace

Gateway::Gateway(EventLoop* loop, const WebsiteCatalog* catalog,
                 EntryPicker picker, Options options, StatsRegistry* stats)
    : loop_(loop),
      catalog_(catalog),
      picker_(std::move(picker)),
      options_(std::move(options)),
      stats_(stats) {}

Gateway::~Gateway() { CloseAll(); }

size_t Gateway::ObjectBodyBytes(const ObjectId& id) {
  return 1024 + (Mix64(id.Packed()) & 0x3FFF);  // 1 KiB .. ~17 KiB
}

void Gateway::CloseAll() {
  for (auto& [id, conn] : conns_) {
    loop_->Remove(conn.fd);
    ::close(conn.fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) {
    loop_->Remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

bool Gateway::Listen() {
  FLOWERCDN_CHECK(listen_fd_ < 0) << "already listening";
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  FLOWERCDN_CHECK(fd >= 0) << "socket(): " << strerror(errno);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  int flags = ::fcntl(fd, F_GETFL, 0);
  FLOWERCDN_CHECK(flags >= 0 &&
                  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0)
      << "fcntl(): " << strerror(errno);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    FLOWERCDN_LOG(kWarning) << "gateway: bind(" << options_.host << ":"
                            << options_.port << "): " << strerror(errno);
    ::close(fd);
    return false;
  }
  FLOWERCDN_CHECK(::listen(fd, 512) == 0) << "listen(): " << strerror(errno);
  socklen_t len = sizeof(addr);
  FLOWERCDN_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr),
                                &len) == 0)
      << "getsockname(): " << strerror(errno);
  port_ = ntohs(addr.sin_port);

  listen_fd_ = fd;
  loop_->Add(fd, EventLoop::kReadable, [this](uint32_t) { AcceptReady(); });
  return true;
}

void Gateway::AcceptReady() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      FLOWERCDN_LOG(kWarning) << "gateway: accept(): " << strerror(errno);
      return;
    }
    if (conns_.size() >= options_.max_connections) {
      ::close(fd);  // shed load; the client sees a reset
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    uint64_t id = next_conn_id_++;
    Conn& conn = conns_[id];
    conn.fd = fd;
    loop_->Add(fd, EventLoop::kReadable, [this, id](uint32_t events) {
      if ((events & EventLoop::kWritable) != 0) TryFlush(id);
      if ((events & EventLoop::kReadable) != 0) OnReadable(id);
    });
  }
}

void Gateway::CloseConn(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  loop_->Remove(it->second.fd);
  ::close(it->second.fd);
  conns_.erase(it);
}

void Gateway::OnReadable(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  char buf[16 * 1024];
  while (true) {
    ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      CloseConn(id);
      return;
    }
    if (n == 0) {
      CloseConn(id);
      return;
    }
    conn.parser.Append(buf, static_cast<size_t>(n));
    if (static_cast<size_t>(n) < sizeof(buf)) break;
  }
  MaybeServeNext(id);
}

void Gateway::MaybeServeNext(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  if (conn.busy || conn.close_after_write) return;

  HttpRequest req;
  if (!conn.parser.Next(&req)) {
    if (conn.parser.failed()) {
      ++stats_counters_.bad_requests;
      Respond(id, 400, "Bad Request", {}, conn.parser.error(),
              /*close_after=*/true);
    }
    return;
  }
  ServeRequest(id, req);
}

void Gateway::ServeRequest(uint64_t id, const HttpRequest& req) {
  // The admin plane rides the public port (no --admin-port configured):
  // intercept its paths before they are parsed as content targets. Admin
  // traffic is counted on its own, not as gateway requests.
  if (options_.admin != nullptr) {
    AdminHandler::Response admin_resp;
    if (options_.admin->Handle(req.target, &admin_resp)) {
      if (stats_ != nullptr) stats_->Add("net.admin.requests");
      Respond(id, admin_resp.status, admin_resp.reason,
              {{"Content-Type", admin_resp.content_type}}, admin_resp.body,
              /*close_after=*/false);
      return;
    }
  }

  ++stats_counters_.requests;
  if (stats_ != nullptr) stats_->Add("net.gateway.requests");

  if (req.method != "GET") {
    ++stats_counters_.bad_requests;
    Respond(id, 405, "Method Not Allowed", {}, "GET only",
            /*close_after=*/false);
    return;
  }
  // Target shape: /<website>/<object>, both decimal catalog indices.
  std::string_view target = req.target;
  ObjectId object;
  bool ok = !target.empty() && target.front() == '/';
  if (ok) {
    target.remove_prefix(1);
    size_t slash = target.find('/');
    ok = slash != std::string_view::npos &&
         ParseIndex(target.substr(0, slash), &object.website) &&
         ParseIndex(target.substr(slash + 1), &object.object) &&
         static_cast<int>(object.website) < catalog_->num_websites() &&
         static_cast<int>(object.object) < catalog_->objects_per_website();
  }
  if (!ok) {
    ++stats_counters_.bad_requests;
    Respond(id, 404, "Not Found", {}, "expected /<website>/<object>",
            /*close_after=*/false);
    return;
  }

  FlowerPeer* entry = picker_(object.website, id);
  if (entry == nullptr) {
    ++stats_counters_.unavailable;
    Respond(id, 503, "Service Unavailable", {},
            "no hosted peer for this website", /*close_after=*/false);
    return;
  }

  Conn& conn = conns_[id];
  conn.busy = true;
  conn.serve_start_us = MonotonicMicros();
  entry->QueryExternal(object, [this, id, object](bool hit,
                                                  ServedSource source,
                                                  double lookup_ms) {
    OnQueryDone(id, object, hit, source, lookup_ms);
  });
}

void Gateway::OnQueryDone(uint64_t id, const ObjectId& object, bool hit,
                          ServedSource source, double lookup_ms) {
  size_t body_bytes = ObjectBodyBytes(object);
  switch (source) {
    case ServedSource::kPetal:
      ++stats_counters_.served_petal;
      stats_counters_.body_bytes_petal += body_bytes;
      if (stats_ != nullptr) stats_->Add("net.gateway.served_petal");
      break;
    case ServedSource::kDirectory:
      ++stats_counters_.served_directory;
      stats_counters_.body_bytes_directory += body_bytes;
      if (stats_ != nullptr) stats_->Add("net.gateway.served_directory");
      break;
    case ServedSource::kOrigin:
      ++stats_counters_.served_origin;
      stats_counters_.body_bytes_origin += body_bytes;
      if (stats_ != nullptr) stats_->Add("net.gateway.served_origin");
      break;
  }

  auto it = conns_.find(id);
  if (it == conns_.end()) return;  // client went away mid-query
  it->second.busy = false;

  int64_t wall_us = MonotonicMicros() - it->second.serve_start_us;
  if (wall_us < 0) wall_us = 0;
  request_latency_.Record(static_cast<uint64_t>(wall_us));
  double wall_ms = static_cast<double>(wall_us) / 1000.0;
  if (options_.slow_request_ms > 0 && wall_ms >= options_.slow_request_ms) {
    ++slow_requests_;
    if (stats_ != nullptr) stats_->Add("net.gateway.slow_requests");
    FLOWERCDN_LOG(kWarning) << "gateway: slow request GET /" << object.website
                            << "/" << object.object << ": " << wall_ms
                            << " ms wall, source="
                            << ServedSourceName(source)
                            << " hit=" << (hit ? 1 : 0)
                            << " lookup_ms=" << lookup_ms;
  }

  char lookup[32];
  snprintf(lookup, sizeof(lookup), "%.1f", lookup_ms);
  std::string body(body_bytes, 'x');
  Respond(id, 200, "OK",
          {{"X-FlowerCDN-Source", ServedSourceName(source)},
           {"X-FlowerCDN-Hit", hit ? "1" : "0"},
           {"X-FlowerCDN-Lookup-Ms", lookup},
           {"Content-Type", "application/octet-stream"}},
          body, /*close_after=*/false);
}

void Gateway::Respond(uint64_t id, int status, const char* reason,
                      const std::vector<HttpHeader>& headers,
                      std::string_view body, bool close_after) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  conn.out.append(BuildHttpResponse(status, reason, headers, body));
  conn.close_after_write = conn.close_after_write || close_after;
  ++stats_counters_.responses;
  if (stats_ != nullptr) stats_->Add("net.gateway.responses");
  TryFlush(id);
}

void Gateway::TryFlush(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  while (conn.out_offset < conn.out.size()) {
    ssize_t n = ::write(conn.fd, conn.out.data() + conn.out_offset,
                        conn.out.size() - conn.out_offset);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      CloseConn(id);
      return;
    }
    conn.out_offset += static_cast<size_t>(n);
  }
  if (conn.out_offset >= conn.out.size()) {
    conn.out.clear();
    conn.out_offset = 0;
    if (conn.close_after_write) {
      CloseConn(id);
      return;
    }
    if (conn.want_writable) {
      conn.want_writable = false;
      loop_->Update(conn.fd, EventLoop::kReadable);
    }
    // The parser may hold a pipelined request that arrived while busy.
    MaybeServeNext(id);
    return;
  }
  if (!conn.want_writable) {
    conn.want_writable = true;
    loop_->Update(conn.fd, EventLoop::kReadable | EventLoop::kWritable);
  }
}

}  // namespace flowercdn
