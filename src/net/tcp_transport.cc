#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "net/clock.h"
#include "obs/stats.h"
#include "util/logging.h"
#include "wire/codec.h"
#include "util/result.h"

namespace flowercdn {

namespace {

int MakeNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) return -1;
  return 0;
}

bool FillAddr(const ClusterMember& member, sockaddr_in* addr) {
  memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(member.port);
  return ::inet_pton(AF_INET, member.host.c_str(), &addr->sin_addr) == 1;
}

}  // namespace

TcpTransport::TcpTransport(Network* network, EventLoop* loop, int self_rank,
                           std::vector<ClusterMember> members, OwnerFn owner,
                           Options options, StatsRegistry* stats)
    : network_(network),
      loop_(loop),
      self_rank_(self_rank),
      members_(std::move(members)),
      owner_(std::move(owner)),
      options_(options),
      stats_(stats) {
  FLOWERCDN_CHECK(self_rank_ >= 0 &&
                  static_cast<size_t>(self_rank_) < members_.size())
      << "self rank " << self_rank_ << " outside cluster of "
      << members_.size();
  FLOWERCDN_CHECK(options_.queue_low_watermark <=
                  options_.queue_high_watermark)
      << "watermarks inverted";
  FLOWERCDN_CHECK(options_.queue_high_watermark <= options_.queue_hard_cap)
      << "high watermark above the hard cap";
}

TcpTransport::~TcpTransport() { CloseAll(); }

void TcpTransport::CountEvent(const char* name, uint64_t n) {
  if (stats_ != nullptr) stats_->Add(name, n);
}

void TcpTransport::CloseAll() {
  for (auto& [rank, conn] : outbound_) {
    if (conn.fd >= 0) {
      loop_->Remove(conn.fd);
      ::close(conn.fd);
      conn.fd = -1;
    }
    conn.state = OutConn::State::kIdle;
  }
  for (auto& [fd, conn] : inbound_) {
    loop_->Remove(fd);
    ::close(fd);
  }
  inbound_.clear();
  if (listen_fd_ >= 0) {
    loop_->Remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

// --- Listening / inbound ------------------------------------------------------

bool TcpTransport::Listen() {
  FLOWERCDN_CHECK(listen_fd_ < 0) << "already listening";
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  FLOWERCDN_CHECK(fd >= 0) << "socket(): " << strerror(errno);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  FLOWERCDN_CHECK(MakeNonBlocking(fd) == 0) << "fcntl(): " << strerror(errno);

  sockaddr_in addr;
  FLOWERCDN_CHECK(FillAddr(members_[self_rank_], &addr))
      << "bad listen host " << members_[self_rank_].host;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    FLOWERCDN_LOG(kWarning) << "tcp: bind(" << members_[self_rank_].host
                            << ":" << members_[self_rank_].port
                            << "): " << strerror(errno);
    ::close(fd);
    return false;
  }
  FLOWERCDN_CHECK(::listen(fd, 256) == 0) << "listen(): " << strerror(errno);

  socklen_t len = sizeof(addr);
  FLOWERCDN_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr),
                                &len) == 0)
      << "getsockname(): " << strerror(errno);
  listen_port_ = ntohs(addr.sin_port);
  members_[self_rank_].port = listen_port_;

  listen_fd_ = fd;
  loop_->Add(fd, EventLoop::kReadable, [this](uint32_t) { AcceptReady(); });
  return true;
}

void TcpTransport::AcceptReady() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      FLOWERCDN_LOG(kWarning) << "tcp: accept(): " << strerror(errno);
      return;
    }
    if (inbound_.size() >= options_.max_accepted) EvictOldestInbound();
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto [it, inserted] =
        inbound_.emplace(fd, InConn(options_.max_frame_payload));
    FLOWERCDN_CHECK(inserted);
    it->second.fd = fd;
    it->second.last_activity = ++use_clock_;
    loop_->Add(fd, EventLoop::kReadable,
               [this, fd](uint32_t) { ReadInbound(fd); });
  }
}

void TcpTransport::EvictOldestInbound() {
  auto victim = inbound_.end();
  for (auto it = inbound_.begin(); it != inbound_.end(); ++it) {
    if (victim == inbound_.end() ||
        it->second.last_activity < victim->second.last_activity) {
      victim = it;
    }
  }
  if (victim == inbound_.end()) return;
  ++accepted_evicted_;
  CountEvent("net.tcp.accepted_evicted");
  CloseInbound(victim->first);
}

void TcpTransport::CloseInbound(int fd) {
  auto it = inbound_.find(fd);
  if (it == inbound_.end()) return;
  loop_->Remove(fd);
  ::close(fd);
  inbound_.erase(it);
}

void TcpTransport::ReadInbound(int fd) {
  auto it = inbound_.find(fd);
  if (it == inbound_.end()) return;
  InConn& conn = it->second;
  conn.last_activity = ++use_clock_;

  uint8_t buf[64 * 1024];
  while (true) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      CloseInbound(fd);
      return;
    }
    if (n == 0) {  // peer closed (its outbound side went away)
      CloseInbound(fd);
      return;
    }
    bytes_received_ += static_cast<uint64_t>(n);
    conn.assembler.Append(buf, static_cast<size_t>(n));

    FrameAssembler::Frame frame;
    while (conn.assembler.Next(&frame)) {
      Result<MessagePtr> decoded =
          WireDecode(frame.payload.data(), frame.payload.size());
      if (!decoded.ok()) {
        ++decode_errors_;
        CountEvent("net.tcp.decode_errors");
        FLOWERCDN_LOG(kWarning) << "tcp: undecodable frame payload ("
                                << frame.payload.size() << " bytes): "
                                << decoded.status().ToString()
                                << "; closing stream";
        CloseInbound(fd);
        return;
      }
      ++frames_received_;
      MessagePtr msg = std::move(decoded).value();
      msg->trace = frame.header.trace;  // restore cross-rank trace context
      PeerId dst = msg->dst;
      network_->DeliverFromTransport(dst, frame.header.latency,
                                     static_cast<size_t>(
                                         frame.header.accounted_bytes),
                                     std::move(msg));
    }
    if (conn.assembler.failed()) {
      ++decode_errors_;
      CountEvent("net.tcp.decode_errors");
      FLOWERCDN_LOG(kWarning) << "tcp: corrupt frame stream: "
                              << conn.assembler.error()
                              << "; closing stream";
      CloseInbound(fd);
      return;
    }
    if (static_cast<size_t>(n) < sizeof(buf)) break;  // drained
  }
}

// --- Outbound -----------------------------------------------------------------

TcpTransport::OutConn& TcpTransport::Out(int rank) {
  return outbound_[rank];  // value-initialized kIdle on first use
}

void TcpTransport::SetQueueBytes(OutConn& c, size_t bytes) {
  queued_bytes_total_ -= c.queue_bytes;
  c.queue_bytes = bytes;
  queued_bytes_total_ += bytes;
  peak_queued_bytes_ = std::max(peak_queued_bytes_, queued_bytes_total_);
  if (!c.backpressured && bytes > options_.queue_high_watermark) {
    c.backpressured = true;
    ++backpressure_events_;
    CountEvent("net.tcp.backpressure_events");
  } else if (c.backpressured && bytes <= options_.queue_low_watermark) {
    c.backpressured = false;
  }
}

void TcpTransport::Carry(PeerId src, PeerId dst, SimDuration latency,
                         size_t accounted_bytes, MessagePtr msg) {
  (void)src;
  int owner = owner_(dst);
  if (owner == self_rank_) {
    // Locally-hosted destination: no socket hop, straight back into the
    // simulator (same as the in-process backend).
    network_->DeliverFromTransport(dst, latency, accounted_bytes,
                                   std::move(msg));
    return;
  }
  FLOWERCDN_CHECK(owner >= 0 && static_cast<size_t>(owner) < members_.size())
      << "owner rank " << owner << " outside cluster";

  frame_.clear();
  EncodeFrame(*msg, accounted_bytes, latency, msg->trace, &frame_);

  OutConn& c = Out(owner);
  if (c.queue_bytes + frame_.size() > options_.queue_hard_cap) {
    ++frames_dropped_;
    CountEvent("net.tcp.frames_dropped");
    network_->NoteTransportDrop(*msg, accounted_bytes);
    return;
  }
  c.queue.emplace_back(frame_);
  SetQueueBytes(c, c.queue_bytes + frame_.size());

  switch (c.state) {
    case OutConn::State::kIdle:
      StartConnect(owner);
      break;
    case OutConn::State::kConnected:
      TryFlush(owner);
      break;
    case OutConn::State::kConnecting:
    case OutConn::State::kBackoff:
      break;  // queued; flushes when the dial completes / retries
  }
}

void TcpTransport::StartConnect(int rank) {
  OutConn& c = Out(rank);
  FLOWERCDN_CHECK(c.fd < 0) << "connect with live fd";
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  FLOWERCDN_CHECK(fd >= 0) << "socket(): " << strerror(errno);
  FLOWERCDN_CHECK(MakeNonBlocking(fd) == 0) << "fcntl(): " << strerror(errno);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr;
  FLOWERCDN_CHECK(FillAddr(members_[static_cast<size_t>(rank)], &addr))
      << "bad member host " << members_[static_cast<size_t>(rank)].host;
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    int err = errno;  // close() below may clobber errno
    ::close(fd);
    Disconnect(rank, strerror(err));
    return;
  }
  c.fd = fd;
  c.state = OutConn::State::kConnecting;
  c.want_writable = true;
  loop_->Add(fd, EventLoop::kReadable | EventLoop::kWritable,
             [this, rank](uint32_t events) {
               OutConn& conn = Out(rank);
               if (conn.state == OutConn::State::kConnecting) {
                 HandleConnectResult(rank);
                 return;
               }
               if ((events & EventLoop::kReadable) != 0) {
                 HandleOutReadable(rank);
               }
               if ((events & EventLoop::kWritable) != 0 &&
                   conn.state == OutConn::State::kConnected) {
                 TryFlush(rank);
               }
             });
}

void TcpTransport::HandleConnectResult(int rank) {
  OutConn& c = Out(rank);
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
    err = errno;
  }
  if (err != 0) {
    Disconnect(rank, strerror(err));
    return;
  }
  c.state = OutConn::State::kConnected;
  if (c.backoff_ms > 0) {
    ++reconnects_;
    CountEvent("net.tcp.reconnects");
  }
  c.backoff_ms = 0;
  TryFlush(rank);
}

void TcpTransport::HandleOutReadable(int rank) {
  // Outbound connections are write-only; readability means EOF or error
  // (the remote never sends on our dialed stream).
  OutConn& c = Out(rank);
  uint8_t buf[256];
  ssize_t n = ::read(c.fd, buf, sizeof(buf));
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
    return;
  }
  Disconnect(rank, n > 0 ? "unexpected inbound data"
                         : (n == 0 ? "peer closed" : strerror(errno)));
}

void TcpTransport::Disconnect(int rank, const char* why) {
  OutConn& c = Out(rank);
  if (c.fd >= 0) {
    loop_->Remove(c.fd);
    ::close(c.fd);
    c.fd = -1;
  }
  if (c.state == OutConn::State::kConnected) {
    ++conn_drops_;
    CountEvent("net.tcp.conn_drops");
  } else {
    ++connect_failures_;
    CountEvent("net.tcp.connect_failures");
  }
  // A partially-written front frame cannot be resumed mid-stream; the
  // fresh connection is a fresh stream, so resend it from the top.
  c.first_offset = 0;
  c.want_writable = false;
  c.state = OutConn::State::kBackoff;
  c.backoff_ms = c.backoff_ms == 0
                     ? options_.reconnect_initial_ms
                     : std::min(c.backoff_ms * 2, options_.reconnect_max_ms);
  c.next_attempt_ms = MonotonicMillis() + c.backoff_ms;
  FLOWERCDN_LOG(kInfo) << "tcp: rank " << rank << " unreachable (" << why
                       << "); retry in " << c.backoff_ms << " ms, "
                       << c.queue_bytes << " bytes queued";
}

void TcpTransport::TryFlush(int rank) {
  OutConn& c = Out(rank);
  while (!c.queue.empty()) {
    const std::vector<uint8_t>& front = c.queue.front();
    ssize_t n = ::write(c.fd, front.data() + c.first_offset,
                        front.size() - c.first_offset);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      Disconnect(rank, strerror(errno));
      return;
    }
    bytes_sent_ += static_cast<uint64_t>(n);
    c.first_offset += static_cast<size_t>(n);
    SetQueueBytes(c, c.queue_bytes - static_cast<size_t>(n));
    if (c.first_offset == front.size()) {
      ++frames_sent_;
      c.queue.pop_front();
      c.first_offset = 0;
    }
  }
  bool want = !c.queue.empty();
  if (want != c.want_writable) {
    c.want_writable = want;
    loop_->Update(c.fd, EventLoop::kReadable |
                            (want ? EventLoop::kWritable : 0u));
  }
}

int TcpTransport::Tick() {
  int64_t now = MonotonicMillis();
  int next = -1;
  for (auto& [rank, c] : outbound_) {
    if (c.state != OutConn::State::kBackoff) continue;
    if (c.next_attempt_ms <= now) {
      c.state = OutConn::State::kIdle;
      StartConnect(rank);
      // StartConnect may fail synchronously and re-enter kBackoff with a
      // fresh deadline; fall through to pick it up below.
    }
    if (c.state == OutConn::State::kBackoff) {
      int delay = static_cast<int>(c.next_attempt_ms - now);
      if (delay < 0) delay = 0;
      next = next < 0 ? delay : std::min(next, delay);
    }
  }
  return next;
}

size_t TcpTransport::connected_ranks() const {
  size_t n = 0;
  for (const auto& [rank, c] : outbound_) {
    if (c.state == OutConn::State::kConnected) ++n;
  }
  return n;
}

void TcpTransport::ExportGauges() {
  if (stats_ == nullptr) return;
  stats_->Set("net.tcp.queued_bytes", static_cast<double>(queued_bytes_total_));
  stats_->Set("net.tcp.peak_queued_bytes",
              static_cast<double>(peak_queued_bytes_));
  stats_->Set("net.tcp.out_connected", static_cast<double>(connected_ranks()));
  stats_->Set("net.tcp.accepted", static_cast<double>(inbound_.size()));
  // Per-connection write-queue depth: one gauge per remote rank this
  // process has ever dialed (queue depth is the earliest backpressure
  // signal — a single slow peer shows up here long before the aggregate).
  char name[64];
  for (const auto& [rank, conn] : outbound_) {
    snprintf(name, sizeof(name), "net.tcp.out_queue_bytes.rank%d", rank);
    stats_->Set(name, static_cast<double>(conn.queue_bytes));
  }
}

}  // namespace flowercdn
