#ifndef FLOWERCDN_NET_GATEWAY_H_
#define FLOWERCDN_NET_GATEWAY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>

#include "flower/flower_peer.h"
#include "net/event_loop.h"
#include "net/http.h"
#include "obs/latency_histogram.h"
#include "storage/object_id.h"
#include "storage/website.h"

namespace flowercdn {

class AdminHandler;
class StatsRegistry;

/// HTTP/1.1 front door of a cluster node: `GET /<website>/<object>` is
/// resolved through a hosted Flower-CDN peer (FlowerPeer::QueryExternal) —
/// petal summary hit, directory-routed lookup, or origin fallback — and
/// answered with a synthetic object body plus headers saying where the
/// bytes came from:
///
///     X-FlowerCDN-Source: petal | directory | origin
///     X-FlowerCDN-Hit:    1 | 0          (served from the overlay?)
///     X-FlowerCDN-Lookup-Ms: <sim ms>    (simulated lookup latency)
///
/// Connections are keep-alive; requests on one connection are served in
/// order (a parsed request waits until the previous response is written).
/// Object bodies are deterministic filler of ObjectBodyBytes() length, so
/// the petal-vs-origin byte split is reproducible across runs.
class Gateway {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;  // 0 = kernel-picked (see port())
    size_t max_connections = 4096;
    /// Non-null: /metrics, /statusz and /healthz on this port are answered
    /// by the admin handler instead of the content path (non-owning).
    AdminHandler* admin = nullptr;
    /// > 0: any request whose wall-clock service time reaches this many
    /// milliseconds is logged with its hit source and lookup latency.
    double slow_request_ms = 0;
  };

  /// Picks a hosted entry peer interested in `website` (salt spreads the
  /// load across candidates). Returning nullptr yields a 503.
  using EntryPicker = std::function<FlowerPeer*(WebsiteId, uint64_t salt)>;

  Gateway(EventLoop* loop, const WebsiteCatalog* catalog, EntryPicker picker,
          Options options, StatsRegistry* stats);
  Gateway(EventLoop* loop, const WebsiteCatalog* catalog, EntryPicker picker)
      : Gateway(loop, catalog, std::move(picker), Options(), nullptr) {}
  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;
  ~Gateway();

  bool Listen();
  uint16_t port() const { return port_; }
  void CloseAll();

  /// Deterministic synthetic body size of an object: 1–17 KiB, hashed from
  /// the id so repeated fetches agree everywhere.
  static size_t ObjectBodyBytes(const ObjectId& id);

  struct Stats {
    uint64_t requests = 0;
    uint64_t responses = 0;
    uint64_t bad_requests = 0;
    uint64_t unavailable = 0;  // 503: no hosted entry peer
    uint64_t served_petal = 0;
    uint64_t served_directory = 0;
    uint64_t served_origin = 0;
    uint64_t body_bytes_petal = 0;
    uint64_t body_bytes_directory = 0;
    uint64_t body_bytes_origin = 0;
  };
  const Stats& stats() const { return stats_counters_; }
  size_t open_connections() const { return conns_.size(); }
  /// Wall-clock latency of every query-served request (request parsed →
  /// response queued), including the event-loop and overlay time.
  const LatencyHistogram& request_latency() const { return request_latency_; }
  uint64_t slow_requests() const { return slow_requests_; }

 private:
  struct Conn {
    int fd = -1;
    HttpRequestParser parser;
    std::string out;        // response bytes not yet written
    size_t out_offset = 0;
    bool busy = false;      // a query is in flight for this connection
    bool want_writable = false;
    bool close_after_write = false;
    int64_t serve_start_us = 0;  // wall clock when the query was submitted
  };

  void AcceptReady();
  void OnReadable(uint64_t id);
  void MaybeServeNext(uint64_t id);
  void ServeRequest(uint64_t id, const HttpRequest& req);
  void OnQueryDone(uint64_t id, const ObjectId& object, bool hit,
                   ServedSource source, double lookup_ms);
  void Respond(uint64_t id, int status, const char* reason,
               const std::vector<HttpHeader>& headers, std::string_view body,
               bool close_after);
  void TryFlush(uint64_t id);
  void CloseConn(uint64_t id);

  EventLoop* loop_;
  const WebsiteCatalog* catalog_;
  EntryPicker picker_;
  Options options_;
  StatsRegistry* stats_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, Conn> conns_;
  Stats stats_counters_;
  LatencyHistogram request_latency_;
  uint64_t slow_requests_ = 0;
};

}  // namespace flowercdn

#endif  // FLOWERCDN_NET_GATEWAY_H_
