#ifndef FLOWERCDN_NET_LOADGEN_H_
#define FLOWERCDN_NET_LOADGEN_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "net/event_loop.h"
#include "net/http.h"
#include "net/tcp_transport.h"
#include "obs/latency_histogram.h"
#include "util/random.h"

namespace flowercdn {

/// Zipf-workload HTTP load generator for the cluster gateway. Two drive
/// modes:
///  * closed loop (`open_loop_qps == 0`): every connection keeps exactly
///    one request outstanding — throughput is what the system sustains;
///  * open loop (`open_loop_qps > 0`): arrivals fire at the target rate
///    regardless of completions; arrivals that find no idle connection
///    wait in a bounded backlog (overflow is counted, not silently lost),
///    so coordinated omission is visible instead of hidden.
class LoadGenerator {
 public:
  struct Options {
    /// Gateway endpoints; connections round-robin across them.
    std::vector<ClusterMember> targets;
    size_t connections = 64;
    double duration_s = 10.0;
    /// Measurement starts after this many seconds (stats reset once).
    double warmup_s = 0.0;
    double open_loop_qps = 0.0;
    uint64_t seed = 1;
    /// Request space: /<website>/<object> with website uniform in
    /// [0, num_websites) and object Zipf(zipf_alpha) in
    /// [0, objects_per_website).
    int num_websites = 6;
    int objects_per_website = 80;
    double zipf_alpha = 0.8;
    size_t max_backlog = 100000;
  };

  struct Report {
    double duration_s = 0;       // measured (post-warmup) window
    uint64_t requests_sent = 0;
    uint64_t responses_ok = 0;   // HTTP 200
    uint64_t responses_error = 0;
    uint64_t parse_errors = 0;
    uint64_t connect_failures = 0;
    uint64_t backlog_dropped = 0;  // open loop: arrivals past max_backlog
    double qps = 0;              // responses_ok / duration_s
    uint64_t served_petal = 0;
    uint64_t served_directory = 0;
    uint64_t served_origin = 0;
    uint64_t body_bytes_petal = 0;
    uint64_t body_bytes_directory = 0;
    uint64_t body_bytes_origin = 0;
    double p50_ms = 0, p90_ms = 0, p95_ms = 0, p99_ms = 0;
    double mean_ms = 0, max_ms = 0;
  };

  explicit LoadGenerator(Options options);

  /// Blocks for warmup_s + duration_s (plus a short drain) and returns the
  /// measured report.
  Report Run();

 private:
  struct Conn {
    int fd = -1;
    size_t target = 0;
    bool connecting = false;
    bool inflight = false;
    HttpResponseParser parser;
    std::string out;
    size_t out_offset = 0;
    int64_t sent_at_us = 0;
  };

  void OpenConn(size_t idx);
  void CloseConn(size_t idx, bool reconnect);
  void OnEvent(size_t idx, uint32_t events);
  void OnConnected(size_t idx);
  void OnReadable(size_t idx);
  void TryFlush(size_t idx);
  void IssueOn(size_t idx);
  void MaybeIssue(size_t idx);
  std::string NextTarget();
  void CountResponse(const HttpResponse& resp, int64_t latency_us);
  void ResetMeasurement();

  Options options_;
  EventLoop loop_;
  Rng rng_;
  ZipfDistribution object_zipf_;
  std::vector<Conn> conns_;
  std::deque<std::string> backlog_;  // open loop: targets awaiting a conn
  bool measuring_ = false;
  bool stop_issuing_ = false;

  LatencyHistogram latency_;
  Report report_;
};

}  // namespace flowercdn

#endif  // FLOWERCDN_NET_LOADGEN_H_
