#ifndef FLOWERCDN_NET_NODE_HOST_H_
#define FLOWERCDN_NET_NODE_HOST_H_

#include <csignal>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "expt/env.h"
#include "flower/dring.h"
#include "flower/flower_peer.h"
#include "net/admin.h"
#include "net/event_loop.h"
#include "net/gateway.h"
#include "net/tcp_transport.h"
#include "wire/udp_transport.h"

namespace flowercdn {

/// Which backend carries protocol messages out of this process.
enum class TransportKind { kInProcess, kUdp, kTcp };

/// How peer identities are assigned to cluster ranks. Every rank computes
/// the same assignment from the shared config, so there is no membership
/// protocol — ownership is a pure function.
///  * kHash: owner = Mix64(peer) % world. Even spread; most petal traffic
///    crosses rank boundaries.
///  * kLocality: owner = locality % world. Petals (which are per-locality)
///    stay rank-local, so only D-ring routing and cross-locality lookups
///    hit the sockets — the deployment-shaped choice.
enum class PartitionScheme { kHash, kLocality };

/// One process of a (possibly multi-process) live deployment, hosting many
/// virtual Flower-CDN peers on a single event loop. The simulator remains
/// the scheduler — protocol timers and deliveries are simulated events —
/// but the clock is paced against wall time (RunPaced) and every message
/// whose destination lives on another rank travels a real TCP stream.
///
/// The whole identity universe is built deterministically from the shared
/// ExperimentConfig on every rank (same seed => same identities, websites,
/// coordinates); each rank attaches only the sessions it owns. Messages to
/// remote peers are carried by TcpTransport to the owning rank; a peer that
/// has not launched yet NACKs/times out exactly like a dead peer in the
/// simulation, so cluster start skew is absorbed by the protocol's own
/// retries. Cluster mode runs a static population (no churn): robustness
/// under churn is the simulator's job, the cluster runtime measures the
/// serving path.
class NodeHost {
 public:
  struct Options {
    int rank = 0;
    /// One entry per rank; members[rank] is this process. A single default
    /// member means single-process.
    std::vector<ClusterMember> members{ClusterMember{}};
    TransportKind transport = TransportKind::kInProcess;
    PartitionScheme partition = PartitionScheme::kHash;
    /// Simulated ms advanced per wall ms in RunPaced (20 => 1 sim-hour
    /// takes 3 wall-minutes).
    double time_scale = 1.0;
    /// Sessions launched across the whole cluster (split by ownership).
    /// 0 means config.target_population.
    size_t population = 0;
    /// Sim-time window over which non-directory peers join (after the
    /// directory launch window).
    SimDuration client_join_spread = 30 * kSecond;
    bool enable_gateway = false;
    Gateway::Options gateway;
    TcpTransport::Options tcp;
    /// Dedicated admin listener (--admin-port). The admin endpoints are
    /// always also served on the gateway port when the gateway is enabled.
    bool enable_admin = false;
    AdminServer::Options admin;
    /// > 0: sample a per-interval snapshot (qps, latency quantiles,
    /// hit-source mix) every this many wall seconds while running; the
    /// series lands in /statusz and the stats JSON as "intervals".
    double stats_interval_s = 0;
    /// Optional external stop signal (a signal handler's flag): run loops
    /// exit cleanly when it becomes non-zero, so a SIGTERM'd node still
    /// writes its stats file.
    const volatile sig_atomic_t* stop_flag = nullptr;
  };

  /// One periodic snapshot of the serving path, all values deltas over the
  /// sampling interval (except sim_ms/t_s, which are run totals).
  struct IntervalSample {
    double t_s = 0;        // wall seconds since the run started
    long long sim_ms = 0;  // simulated clock at sample time
    uint64_t requests = 0;
    uint64_t responses = 0;
    double qps = 0;  // responses / interval length
    double p50_ms = 0, p99_ms = 0;  // gateway wall latency this interval
    uint64_t served_petal = 0;
    uint64_t served_directory = 0;
    uint64_t served_origin = 0;
  };

  NodeHost(ExperimentEnv* env, const FlowerParams& params, Options options);
  NodeHost(const NodeHost&) = delete;
  NodeHost& operator=(const NodeHost&) = delete;
  ~NodeHost();

  /// Installs the transport (TCP mode: binds the listen port — false on
  /// failure), schedules the owned slice of the population, and starts the
  /// gateway when enabled.
  bool Setup();

  int OwnerOf(PeerId peer) const;
  size_t world() const { return options_.members.size(); }
  int rank() const { return options_.rank; }
  size_t hosted_peers() const { return sessions_.size(); }
  size_t hosted_directories() const;
  FlowerPeer* session(PeerId peer);
  /// Hosted entry peer interested in `website` (stable per salt, so one
  /// client connection keeps warming the same surrogate's cache), or
  /// nullptr when this rank hosts no peer of that website.
  FlowerPeer* PeerForWebsite(WebsiteId website, uint64_t salt);

  EventLoop& loop() { return loop_; }
  TcpTransport* tcp() { return tcp_.get(); }
  UdpLoopbackTransport* udp() { return udp_.get(); }
  Gateway* gateway() { return gateway_.get(); }
  AdminServer* admin() { return admin_.get(); }
  AdminHandler& admin_handler() { return admin_handler_; }
  ExperimentEnv* env() { return env_; }
  const std::vector<IntervalSample>& intervals() const { return intervals_; }

  /// Advances the simulated clock against wall time while serving sockets,
  /// until `sim_duration` is reached or Stop() is called.
  void RunPaced(SimDuration sim_duration);

  /// Runs the simulator as fast as it can in `chunk`-sized steps, polling
  /// sockets (gateway, transport timers) between chunks. For single-process
  /// modes where wall pacing has no value. `on_chunk` (optional) runs after
  /// every chunk.
  void RunFast(SimDuration sim_duration, SimDuration chunk,
               const std::function<void()>& on_chunk = nullptr);

  void Stop() { stop_ = true; }
  bool stopped() const { return stop_; }

  /// Pushes level-style stats (hosted peers, queue depth, pool occupancy,
  /// gateway connections) into the env's StatsRegistry as net.* gauges.
  void ExportGauges();

  /// The node's status document (rank, hosted peers, sim time, network/
  /// tcp/udp/gateway counters, event-loop health, interval series) as a
  /// JSON object — what /statusz serves and WriteStatsJson persists.
  std::string StatusJson(double wall_seconds) const;

  /// Renders the /metrics Prometheus exposition: every StatsRegistry
  /// instrument (gauges freshly exported) plus the event-loop and gateway
  /// latency summaries.
  std::string RenderMetrics();

  /// Writes the node's live-run stats as a JSON object to `path`
  /// (BENCH_live.json node record; schema in EXPERIMENTS.md).
  bool WriteStatsJson(const std::string& path, double wall_seconds) const;

 private:
  void LaunchDirectory(PeerId peer, bool create_ring);
  void LaunchClient(PeerId peer);
  PeerId PickClusterBootstrap(PeerId self) const;
  FlowerPeer* CreateSession(PeerId peer);
  /// Honors Options::stop_flag (signal-handler shutdown request).
  void CheckStopFlag();
  /// Appends an IntervalSample when the sampling interval has elapsed
  /// (`force`: flush a partial tail interval on shutdown).
  void MaybeSampleInterval(double wall_s, bool force = false);
  double RunWallSeconds() const;

  ExperimentEnv* env_;
  FlowerParams params_;
  Options options_;
  DRingKeyspace keyspace_;
  FlowerContext ctx_;
  EventLoop loop_;

  std::unique_ptr<UdpLoopbackTransport> udp_;
  std::unique_ptr<TcpTransport> tcp_;
  std::unique_ptr<Gateway> gateway_;
  AdminHandler admin_handler_;
  std::unique_ptr<AdminServer> admin_;

  std::unordered_map<PeerId, std::unique_ptr<FlowerPeer>> sessions_;
  std::unordered_map<WebsiteId, std::vector<FlowerPeer*>> website_peers_;
  size_t initial_directories_ = 0;  // k * |W| (global, not per-rank)
  bool stop_ = false;

  // Interval-sampling state (deltas against the previous sample).
  std::vector<IntervalSample> intervals_;
  double last_sample_wall_s_ = 0;
  Gateway::Stats prev_gateway_stats_;
  LatencyHistogram prev_request_latency_;
  int64_t run_wall0_ms_ = -1;  // MonotonicMillis at run start (-1: not run)
};

}  // namespace flowercdn

#endif  // FLOWERCDN_NET_NODE_HOST_H_
