#include "net/node_host.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <utility>

#include "net/clock.h"
#include "obs/expose.h"
#include "obs/stats.h"
#include "util/hash.h"
#include "util/logging.h"

namespace flowercdn {

namespace {

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  int n = vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n <= 0) return;
  if (static_cast<size_t>(n) < sizeof(buf)) {
    out->append(buf, static_cast<size_t>(n));
    return;
  }
  std::string big(static_cast<size_t>(n) + 1, '\0');
  va_start(args, fmt);
  vsnprintf(big.data(), big.size(), fmt, args);
  va_end(args);
  big.resize(static_cast<size_t>(n));
  out->append(big);
}

double QuantileMs(const LatencyHistogram& hist, double q) {
  return static_cast<double>(hist.QuantileMicros(q)) / 1000.0;
}

}  // namespace

NodeHost::NodeHost(ExperimentEnv* env, const FlowerParams& params,
                   Options options)
    : env_(env),
      params_(params),
      options_(std::move(options)),
      keyspace_(env->config().catalog.num_websites,
                env->config().topology.num_localities,
                params.max_instances) {
  FLOWERCDN_CHECK(env != nullptr);
  FLOWERCDN_CHECK(!options_.members.empty()) << "empty cluster";
  FLOWERCDN_CHECK(options_.rank >= 0 &&
                  static_cast<size_t>(options_.rank) <
                      options_.members.size())
      << "rank " << options_.rank << " outside cluster of "
      << options_.members.size();
  FLOWERCDN_CHECK(options_.time_scale > 0) << "time_scale must be positive";

  ctx_.network = &env_->network();
  ctx_.metrics = &env_->metrics();
  ctx_.catalog = &env_->catalog();
  ctx_.workload = &env_->workload();
  ctx_.origins = &env_->origins();
  ctx_.keyspace = &keyspace_;
  ctx_.params = &params_;
  ctx_.trace = env_->trace_ptr();
  ctx_.stats = &env_->stats();
  ctx_.pick_dring_bootstrap = [this](PeerId self) {
    return PickClusterBootstrap(self);
  };
}

NodeHost::~NodeHost() {
  // Tear sockets down before the sessions they might call back into.
  gateway_.reset();
  tcp_.reset();
  udp_.reset();
}

int NodeHost::OwnerOf(PeerId peer) const {
  size_t w = options_.members.size();
  if (w == 1) return 0;
  switch (options_.partition) {
    case PartitionScheme::kHash:
      return static_cast<int>(Mix64(peer) % w);
    case PartitionScheme::kLocality:
      return static_cast<int>(
          static_cast<size_t>(env_->identity(peer).locality) % w);
  }
  return 0;
}

size_t NodeHost::hosted_directories() const {
  size_t n = 0;
  for (const auto& [peer, session] : sessions_) {
    if (session->role() == FlowerRole::kDirectoryPeer) ++n;
  }
  return n;
}

FlowerPeer* NodeHost::session(PeerId peer) {
  auto it = sessions_.find(peer);
  return it == sessions_.end() ? nullptr : it->second.get();
}

FlowerPeer* NodeHost::PeerForWebsite(WebsiteId website, uint64_t salt) {
  auto it = website_peers_.find(website);
  if (it == website_peers_.end() || it->second.empty()) return nullptr;
  size_t idx = Mix64(salt ^ (static_cast<uint64_t>(website) << 32)) %
               it->second.size();
  return it->second[idx];
}

PeerId NodeHost::PickClusterBootstrap(PeerId self) const {
  // Static rendezvous: the initial directory identities are deterministic
  // and, with no churn in cluster mode, permanently live. Spreading the
  // choice over the first few keeps the join load off one hub.
  size_t n = std::min<size_t>(initial_directories_, 8);
  if (n == 0) return kInvalidPeer;
  size_t idx = Mix64(self) % n;
  PeerId candidate = static_cast<PeerId>(idx + 1);
  if (candidate == self) {
    if (n == 1) return kInvalidPeer;
    candidate = static_cast<PeerId>((idx + 1) % n + 1);
  }
  return candidate;
}

FlowerPeer* NodeHost::CreateSession(PeerId peer) {
  const ExperimentEnv::Identity& identity = env_->identity(peer);
  auto session = std::make_unique<FlowerPeer>(
      ctx_, peer, identity.website, identity.locality,
      &env_->identity(peer).store, env_->MakePeerRng(peer));
  FlowerPeer* raw = session.get();
  sessions_.emplace(peer, std::move(session));
  website_peers_[identity.website].push_back(raw);
  return raw;
}

void NodeHost::LaunchDirectory(PeerId peer, bool create_ring) {
  FlowerPeer* session = CreateSession(peer);
  if (create_ring) {
    session->StartAsDirectory(0, std::nullopt);
    return;
  }
  PeerId bootstrap = PickClusterBootstrap(peer);
  session->StartAsDirectory(0, bootstrap == kInvalidPeer
                                   ? std::nullopt
                                   : std::optional<PeerId>(bootstrap));
}

void NodeHost::LaunchClient(PeerId peer) {
  CreateSession(peer)->StartAsClient();
}

bool NodeHost::Setup() {
  Network& network = env_->network();
  switch (options_.transport) {
    case TransportKind::kInProcess:
      break;
    case TransportKind::kUdp:
      FLOWERCDN_CHECK(world() == 1)
          << "udp-loopback transport is single-process";
      udp_ = std::make_unique<UdpLoopbackTransport>(&network);
      network.SetTransport(udp_.get());
      break;
    case TransportKind::kTcp:
      tcp_ = std::make_unique<TcpTransport>(
          &network, &loop_, options_.rank, options_.members,
          [this](PeerId peer) { return OwnerOf(peer); }, options_.tcp,
          &env_->stats());
      if (!tcp_->Listen()) return false;
      network.SetTransport(tcp_.get());
      break;
  }

  const ExperimentConfig& config = env_->config();
  const int k = config.topology.num_localities;
  const int num_websites = config.catalog.num_websites;
  initial_directories_ =
      static_cast<size_t>(num_websites) * static_cast<size_t>(k);

  size_t population =
      options_.population > 0 ? options_.population : config.target_population;
  population = std::max(population, initial_directories_);
  population = std::min(population, env_->universe_size());

  // The initial D-ring: every rank schedules the same global launch
  // timeline and skips the identities it does not own, so launch times
  // agree across the cluster without coordination.
  size_t global_index = 0;
  for (int ws = 0; ws < num_websites; ++ws) {
    for (int loc = 0; loc < k; ++loc) {
      PeerId peer = env_->InitialDirectoryIdentity(
          static_cast<WebsiteId>(ws), static_cast<LocalityId>(loc));
      if (OwnerOf(peer) == options_.rank) {
        SimDuration at = static_cast<SimDuration>(global_index) *
                         config.initial_join_stagger;
        bool create_ring = global_index == 0;
        env_->sim().Schedule(at, [this, peer, create_ring]() {
          LaunchDirectory(peer, create_ring);
        });
      }
      ++global_index;
    }
  }

  // The rest of the population joins as clients, spread over a window
  // after the directory launch completes.
  SimDuration dir_window = static_cast<SimDuration>(initial_directories_) *
                               config.initial_join_stagger +
                           1;
  size_t num_clients = population - initial_directories_;
  for (size_t i = 0; i < num_clients; ++i) {
    PeerId peer = static_cast<PeerId>(initial_directories_ + i + 1);
    if (OwnerOf(peer) != options_.rank) continue;
    SimDuration at =
        dir_window + static_cast<SimDuration>(
                         (static_cast<uint64_t>(options_.client_join_spread) *
                          i) /
                         std::max<size_t>(num_clients, 1));
    env_->sim().Schedule(at, [this, peer]() { LaunchClient(peer); });
  }

  // The admin plane: wired into the gateway's port (path interception)
  // and, when requested, onto its own listener.
  admin_handler_.set_metrics_fn([this] { return RenderMetrics(); });
  admin_handler_.set_statusz_fn(
      [this] { return StatusJson(RunWallSeconds()); });

  if (options_.enable_gateway) {
    Gateway::Options gw_options = options_.gateway;
    gw_options.admin = &admin_handler_;
    gateway_ = std::make_unique<Gateway>(
        &loop_, &env_->catalog(),
        [this](WebsiteId ws, uint64_t salt) {
          return PeerForWebsite(ws, salt);
        },
        std::move(gw_options), &env_->stats());
    if (!gateway_->Listen()) return false;
  }
  if (options_.enable_admin) {
    admin_ = std::make_unique<AdminServer>(&loop_, &admin_handler_,
                                           options_.admin);
    if (!admin_->Listen()) return false;
  }
  return true;
}

void NodeHost::CheckStopFlag() {
  if (options_.stop_flag != nullptr && *options_.stop_flag != 0) stop_ = true;
}

double NodeHost::RunWallSeconds() const {
  if (run_wall0_ms_ < 0) return 0;
  return static_cast<double>(MonotonicMillis() - run_wall0_ms_) / 1000.0;
}

void NodeHost::MaybeSampleInterval(double wall_s, bool force) {
  if (options_.stats_interval_s <= 0) return;
  double dur = wall_s - last_sample_wall_s_;
  if (!force && dur < options_.stats_interval_s) return;
  if (force && dur <= 0) return;
  last_sample_wall_s_ = wall_s;

  const Gateway::Stats cur =
      gateway_ != nullptr ? gateway_->stats() : Gateway::Stats{};
  const LatencyHistogram cur_latency =
      gateway_ != nullptr ? gateway_->request_latency() : LatencyHistogram{};
  LatencyHistogram delta = cur_latency.DeltaSince(prev_request_latency_);

  IntervalSample s;
  s.t_s = wall_s;
  s.sim_ms = static_cast<long long>(env_->sim().now());
  s.requests = cur.requests - prev_gateway_stats_.requests;
  s.responses = cur.responses - prev_gateway_stats_.responses;
  s.qps = dur > 0 ? static_cast<double>(s.responses) / dur : 0;
  s.p50_ms = QuantileMs(delta, 0.5);
  s.p99_ms = QuantileMs(delta, 0.99);
  s.served_petal = cur.served_petal - prev_gateway_stats_.served_petal;
  s.served_directory =
      cur.served_directory - prev_gateway_stats_.served_directory;
  s.served_origin = cur.served_origin - prev_gateway_stats_.served_origin;
  intervals_.push_back(s);

  prev_gateway_stats_ = cur;
  prev_request_latency_ = cur_latency;
}

void NodeHost::RunPaced(SimDuration sim_duration) {
  const int64_t wall0 = MonotonicMillis();
  run_wall0_ms_ = wall0;
  int64_t last_gauges_ms = 0;
  while (!stop_) {
    CheckStopFlag();
    if (stop_) break;
    int64_t wall = MonotonicMillis() - wall0;
    SimTime target = static_cast<SimTime>(static_cast<double>(wall) *
                                          options_.time_scale);
    if (target > sim_duration) target = sim_duration;
    if (target > env_->sim().now()) env_->sim().RunUntil(target);
    if (target >= sim_duration) break;

    int timeout_ms = 20;
    SimTime next = env_->sim().NextEventTime();
    if (next >= 0) {
      int64_t due_wall = static_cast<int64_t>(static_cast<double>(next) /
                                              options_.time_scale);
      int64_t delta = due_wall - (MonotonicMillis() - wall0);
      if (delta < 0) delta = 0;
      if (delta < timeout_ms) timeout_ms = static_cast<int>(delta);
    }
    if (tcp_ != nullptr) {
      int t = tcp_->Tick();
      if (t >= 0 && t < timeout_ms) timeout_ms = t;
    }
    loop_.PollOnce(timeout_ms);
    if (wall - last_gauges_ms >= 1000) {
      last_gauges_ms = wall;
      ExportGauges();
    }
    MaybeSampleInterval(static_cast<double>(wall) / 1000.0);
  }
  MaybeSampleInterval(RunWallSeconds(), /*force=*/true);
  ExportGauges();
}

void NodeHost::RunFast(SimDuration sim_duration, SimDuration chunk,
                       const std::function<void()>& on_chunk) {
  FLOWERCDN_CHECK(chunk > 0);
  if (run_wall0_ms_ < 0) run_wall0_ms_ = MonotonicMillis();
  SimTime t = env_->sim().now();
  while (!stop_ && t < sim_duration) {
    CheckStopFlag();
    if (stop_) break;
    t = std::min<SimTime>(t + chunk, sim_duration);
    env_->sim().RunUntil(t);
    loop_.PollOnce(0);
    if (tcp_ != nullptr) tcp_->Tick();
    MaybeSampleInterval(RunWallSeconds());
    if (on_chunk) on_chunk();
  }
  ExportGauges();
}

void NodeHost::ExportGauges() {
  StatsRegistry& stats = env_->stats();
  stats.Set("net.host.hosted_peers", static_cast<double>(sessions_.size()));
  if (tcp_ != nullptr) tcp_->ExportGauges();
  if (udp_ != nullptr) {
    stats.Set("net.udp.open_sockets",
              static_cast<double>(udp_->open_sockets()));
  }
  if (gateway_ != nullptr) {
    stats.Set("net.gateway.open_connections",
              static_cast<double>(gateway_->open_connections()));
  }
}

std::string NodeHost::StatusJson(double wall_seconds) const {
  const Network& network = env_->network();
  const Network::TrafficBreakdown& traffic = network.traffic();

  const char* transport = "in-process";
  if (tcp_ != nullptr) transport = tcp_->name();
  if (udp_ != nullptr) transport = udp_->name();

  std::string out;
  out.reserve(2048 + intervals_.size() * 160);
  AppendF(&out,
          "{\n"
          "  \"rank\": %d,\n"
          "  \"world\": %zu,\n"
          "  \"transport\": \"%s\",\n"
          "  \"hosted_peers\": %zu,\n"
          "  \"hosted_directories\": %zu,\n"
          "  \"sim_time_ms\": %lld,\n"
          "  \"wall_seconds\": %.3f,\n"
          "  \"time_scale\": %.3f,\n",
          options_.rank, world(), transport, sessions_.size(),
          hosted_directories(), static_cast<long long>(env_->sim().now()),
          wall_seconds, options_.time_scale);
  AppendF(&out,
          "  \"network\": {\n"
          "    \"messages_sent\": %llu,\n"
          "    \"messages_delivered\": %llu,\n"
          "    \"messages_dropped\": %llu,\n"
          "    \"bytes_sent\": %llu,\n"
          "    \"transport_drop_messages\": %llu,\n"
          "    \"transport_drop_bytes\": %llu\n"
          "  },\n",
          static_cast<unsigned long long>(network.messages_sent()),
          static_cast<unsigned long long>(network.messages_delivered()),
          static_cast<unsigned long long>(network.messages_dropped()),
          static_cast<unsigned long long>(network.bytes_sent()),
          static_cast<unsigned long long>(traffic.transport_drop.messages),
          static_cast<unsigned long long>(traffic.transport_drop.bytes));
  if (tcp_ != nullptr) {
    AppendF(&out,
            "  \"tcp\": {\n"
            "    \"frames_sent\": %llu,\n"
            "    \"frames_received\": %llu,\n"
            "    \"bytes_sent\": %llu,\n"
            "    \"bytes_received\": %llu,\n"
            "    \"frames_dropped\": %llu,\n"
            "    \"decode_errors\": %llu,\n"
            "    \"reconnects\": %llu,\n"
            "    \"connect_failures\": %llu,\n"
            "    \"backpressure_events\": %llu,\n"
            "    \"peak_queued_bytes\": %zu,\n"
            "    \"accepted_evicted\": %llu\n"
            "  },\n",
            static_cast<unsigned long long>(tcp_->frames_sent()),
            static_cast<unsigned long long>(tcp_->frames_received()),
            static_cast<unsigned long long>(tcp_->bytes_sent()),
            static_cast<unsigned long long>(tcp_->bytes_received()),
            static_cast<unsigned long long>(tcp_->frames_dropped()),
            static_cast<unsigned long long>(tcp_->decode_errors()),
            static_cast<unsigned long long>(tcp_->reconnects()),
            static_cast<unsigned long long>(tcp_->connect_failures()),
            static_cast<unsigned long long>(tcp_->backpressure_events()),
            tcp_->peak_queued_bytes(),
            static_cast<unsigned long long>(tcp_->accepted_evicted()));
  }
  if (udp_ != nullptr) {
    AppendF(&out,
            "  \"udp\": {\n"
            "    \"datagrams_sent\": %llu,\n"
            "    \"datagrams_received\": %llu,\n"
            "    \"datagrams_dropped\": %llu,\n"
            "    \"socket_bytes_sent\": %llu\n"
            "  },\n",
            static_cast<unsigned long long>(udp_->datagrams_sent()),
            static_cast<unsigned long long>(udp_->datagrams_received()),
            static_cast<unsigned long long>(udp_->datagrams_dropped()),
            static_cast<unsigned long long>(udp_->socket_bytes_sent()));
  }
  const Gateway::Stats gw =
      gateway_ != nullptr ? gateway_->stats() : Gateway::Stats{};
  const LatencyHistogram gw_latency =
      gateway_ != nullptr ? gateway_->request_latency() : LatencyHistogram{};
  AppendF(&out,
          "  \"gateway\": {\n"
          "    \"requests\": %llu,\n"
          "    \"responses\": %llu,\n"
          "    \"bad_requests\": %llu,\n"
          "    \"unavailable\": %llu,\n"
          "    \"served_petal\": %llu,\n"
          "    \"served_directory\": %llu,\n"
          "    \"served_origin\": %llu,\n"
          "    \"body_bytes_petal\": %llu,\n"
          "    \"body_bytes_directory\": %llu,\n"
          "    \"body_bytes_origin\": %llu,\n"
          "    \"slow_requests\": %llu,\n"
          "    \"latency_p50_ms\": %.3f,\n"
          "    \"latency_p99_ms\": %.3f\n"
          "  },\n",
          static_cast<unsigned long long>(gw.requests),
          static_cast<unsigned long long>(gw.responses),
          static_cast<unsigned long long>(gw.bad_requests),
          static_cast<unsigned long long>(gw.unavailable),
          static_cast<unsigned long long>(gw.served_petal),
          static_cast<unsigned long long>(gw.served_directory),
          static_cast<unsigned long long>(gw.served_origin),
          static_cast<unsigned long long>(gw.body_bytes_petal),
          static_cast<unsigned long long>(gw.body_bytes_directory),
          static_cast<unsigned long long>(gw.body_bytes_origin),
          static_cast<unsigned long long>(
              gateway_ != nullptr ? gateway_->slow_requests() : 0),
          QuantileMs(gw_latency, 0.5), QuantileMs(gw_latency, 0.99));
  AppendF(&out,
          "  \"event_loop\": {\n"
          "    \"polls\": %llu,\n"
          "    \"watched_fds\": %zu,\n"
          "    \"poll_wait_p50_us\": %llu,\n"
          "    \"poll_wait_p99_us\": %llu,\n"
          "    \"callback_p50_us\": %llu,\n"
          "    \"callback_p99_us\": %llu,\n"
          "    \"callback_max_us\": %llu\n"
          "  },\n",
          static_cast<unsigned long long>(loop_.polls()),
          loop_.watched_fds(),
          static_cast<unsigned long long>(loop_.poll_wait().QuantileMicros(0.5)),
          static_cast<unsigned long long>(
              loop_.poll_wait().QuantileMicros(0.99)),
          static_cast<unsigned long long>(
              loop_.callback_duration().QuantileMicros(0.5)),
          static_cast<unsigned long long>(
              loop_.callback_duration().QuantileMicros(0.99)),
          static_cast<unsigned long long>(
              loop_.callback_duration().max_micros()));
  AppendF(&out, "  \"admin_requests\": %llu,\n",
          static_cast<unsigned long long>(admin_handler_.requests()));
  AppendF(&out, "  \"stats_interval_s\": %.3f,\n",
          options_.stats_interval_s);
  out.append("  \"intervals\": [");
  for (size_t i = 0; i < intervals_.size(); ++i) {
    const IntervalSample& s = intervals_[i];
    AppendF(&out,
            "%s\n    {\"t_s\": %.3f, \"sim_ms\": %lld, "
            "\"requests\": %llu, \"responses\": %llu, \"qps\": %.2f, "
            "\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
            "\"served_petal\": %llu, \"served_directory\": %llu, "
            "\"served_origin\": %llu}",
            i == 0 ? "" : ",", s.t_s, s.sim_ms,
            static_cast<unsigned long long>(s.requests),
            static_cast<unsigned long long>(s.responses), s.qps, s.p50_ms,
            s.p99_ms, static_cast<unsigned long long>(s.served_petal),
            static_cast<unsigned long long>(s.served_directory),
            static_cast<unsigned long long>(s.served_origin));
  }
  out.append(intervals_.empty() ? "]\n" : "\n  ]\n");
  out.append("}\n");
  return out;
}

std::string NodeHost::RenderMetrics() {
  ExportGauges();
  StatsRegistry& stats = env_->stats();
  // Touch the families a scraper is promised even before first use, so
  // /metrics is schema-stable from the first scrape on.
  stats.counter("net.gateway.requests");
  stats.counter("net.gateway.responses");
  stats.counter("net.gateway.served_petal");
  stats.counter("net.gateway.served_directory");
  stats.counter("net.gateway.served_origin");
  stats.counter("net.gateway.slow_requests");
  stats.counter("net.admin.requests");

  std::string out;
  AppendPrometheusStats(stats, &out);
  AppendF(&out, "# TYPE flowercdn_eventloop_polls counter\n"
                "flowercdn_eventloop_polls %llu\n",
          static_cast<unsigned long long>(loop_.polls()));
  AppendPrometheusSummary("flowercdn_eventloop_poll_wait_seconds",
                          loop_.poll_wait(), &out);
  AppendPrometheusSummary("flowercdn_eventloop_callback_seconds",
                          loop_.callback_duration(), &out);
  if (gateway_ != nullptr) {
    AppendPrometheusSummary("flowercdn_gateway_request_seconds",
                            gateway_->request_latency(), &out);
  }
  return out;
}

bool NodeHost::WriteStatsJson(const std::string& path,
                              double wall_seconds) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    FLOWERCDN_LOG(kWarning) << "cannot write " << path;
    return false;
  }
  std::string json = StatusJson(wall_seconds);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace flowercdn
