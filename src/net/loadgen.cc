#include "net/loadgen.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "net/clock.h"
#include "util/logging.h"

namespace flowercdn {

// --- LoadGenerator ------------------------------------------------------------

LoadGenerator::LoadGenerator(Options options)
    : options_(std::move(options)),
      rng_(options_.seed),
      object_zipf_(static_cast<size_t>(
                       std::max(options_.objects_per_website, 1)),
                   options_.zipf_alpha) {
  FLOWERCDN_CHECK(!options_.targets.empty()) << "no gateway targets";
  FLOWERCDN_CHECK(options_.connections > 0);
}

std::string LoadGenerator::NextTarget() {
  uint32_t ws = static_cast<uint32_t>(
      rng_.NextBounded(static_cast<uint64_t>(
          std::max(options_.num_websites, 1))));
  uint32_t obj = static_cast<uint32_t>(object_zipf_.Sample(rng_));
  return "/" + std::to_string(ws) + "/" + std::to_string(obj);
}

void LoadGenerator::OpenConn(size_t idx) {
  Conn& c = conns_[idx];
  FLOWERCDN_CHECK(c.fd < 0);
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  FLOWERCDN_CHECK(fd >= 0) << "socket(): " << strerror(errno);
  int flags = ::fcntl(fd, F_GETFL, 0);
  FLOWERCDN_CHECK(flags >= 0 &&
                  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  const ClusterMember& target = options_.targets[c.target];
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(target.port);
  FLOWERCDN_CHECK(::inet_pton(AF_INET, target.host.c_str(),
                              &addr.sin_addr) == 1)
      << "bad target host " << target.host;
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    ++report_.connect_failures;
    return;  // Run() reopens dead connections on the next round
  }
  c.fd = fd;
  c.connecting = true;
  c.inflight = false;
  c.parser = HttpResponseParser();
  c.out.clear();
  c.out_offset = 0;
  loop_.Add(fd, EventLoop::kReadable | EventLoop::kWritable,
            [this, idx](uint32_t events) { OnEvent(idx, events); });
}

void LoadGenerator::CloseConn(size_t idx, bool reconnect) {
  Conn& c = conns_[idx];
  if (c.fd >= 0) {
    loop_.Remove(c.fd);
    ::close(c.fd);
    c.fd = -1;
  }
  c.connecting = false;
  c.inflight = false;
  if (reconnect && !stop_issuing_) OpenConn(idx);
}

void LoadGenerator::OnEvent(size_t idx, uint32_t events) {
  Conn& c = conns_[idx];
  if (c.fd < 0) return;
  if (c.connecting) {
    OnConnected(idx);
    return;
  }
  if ((events & EventLoop::kWritable) != 0) TryFlush(idx);
  if ((events & EventLoop::kReadable) != 0) OnReadable(idx);
}

void LoadGenerator::OnConnected(size_t idx) {
  Conn& c = conns_[idx];
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) err = errno;
  if (err != 0) {
    ++report_.connect_failures;
    CloseConn(idx, /*reconnect=*/true);
    return;
  }
  c.connecting = false;
  loop_.Update(c.fd, EventLoop::kReadable);
  MaybeIssue(idx);
}

void LoadGenerator::IssueOn(size_t idx) {
  Conn& c = conns_[idx];
  std::string target;
  if (!backlog_.empty()) {
    target = std::move(backlog_.front());
    backlog_.pop_front();
  } else {
    target = NextTarget();
  }
  c.out = BuildHttpRequest(target);
  c.out_offset = 0;
  c.inflight = true;
  c.sent_at_us = MonotonicMicros();
  ++report_.requests_sent;
  TryFlush(idx);
}

void LoadGenerator::MaybeIssue(size_t idx) {
  Conn& c = conns_[idx];
  if (c.fd < 0 || c.connecting || c.inflight || stop_issuing_) return;
  if (options_.open_loop_qps > 0 && backlog_.empty()) return;
  IssueOn(idx);
}

void LoadGenerator::TryFlush(size_t idx) {
  Conn& c = conns_[idx];
  while (c.out_offset < c.out.size()) {
    ssize_t n = ::write(c.fd, c.out.data() + c.out_offset,
                        c.out.size() - c.out_offset);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        loop_.Update(c.fd, EventLoop::kReadable | EventLoop::kWritable);
        return;
      }
      ++report_.connect_failures;
      CloseConn(idx, /*reconnect=*/true);
      return;
    }
    c.out_offset += static_cast<size_t>(n);
  }
  loop_.Update(c.fd, EventLoop::kReadable);
}

void LoadGenerator::CountResponse(const HttpResponse& resp,
                                  int64_t latency_us) {
  if (resp.status == 200) {
    ++report_.responses_ok;
    latency_.Record(static_cast<uint64_t>(std::max<int64_t>(latency_us, 0)));
    const std::string* source = resp.Header("X-FlowerCDN-Source");
    uint64_t bytes = resp.body.size();
    if (source != nullptr && *source == "petal") {
      ++report_.served_petal;
      report_.body_bytes_petal += bytes;
    } else if (source != nullptr && *source == "directory") {
      ++report_.served_directory;
      report_.body_bytes_directory += bytes;
    } else {
      ++report_.served_origin;
      report_.body_bytes_origin += bytes;
    }
  } else {
    ++report_.responses_error;
  }
}

void LoadGenerator::OnReadable(size_t idx) {
  Conn& c = conns_[idx];
  char buf[64 * 1024];
  while (true) {
    ssize_t n = ::read(c.fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      CloseConn(idx, /*reconnect=*/true);
      return;
    }
    if (n == 0) {
      CloseConn(idx, /*reconnect=*/true);
      return;
    }
    c.parser.Append(buf, static_cast<size_t>(n));
    if (static_cast<size_t>(n) < sizeof(buf)) break;
  }

  HttpResponse resp;
  while (c.parser.Next(&resp)) {
    c.inflight = false;
    CountResponse(resp, MonotonicMicros() - c.sent_at_us);
    MaybeIssue(idx);
  }
  if (c.parser.failed()) {
    ++report_.parse_errors;
    CloseConn(idx, /*reconnect=*/true);
  }
}

void LoadGenerator::ResetMeasurement() {
  Report fresh;
  // Connection-level failures before the warmup line are start-up noise;
  // everything measured restarts here.
  report_ = fresh;
  latency_.Reset();
}

LoadGenerator::Report LoadGenerator::Run() {
  conns_.resize(options_.connections);
  for (size_t i = 0; i < conns_.size(); ++i) {
    conns_[i].target = i % options_.targets.size();
    OpenConn(i);
  }

  const int64_t start_us = MonotonicMicros();
  const int64_t warmup_end_us =
      start_us + static_cast<int64_t>(options_.warmup_s * 1e6);
  const int64_t end_us =
      warmup_end_us + static_cast<int64_t>(options_.duration_s * 1e6);
  int64_t measure_start_us = warmup_end_us;
  measuring_ = options_.warmup_s <= 0;

  // Open loop: fixed inter-arrival gap in microseconds.
  const bool open_loop = options_.open_loop_qps > 0;
  const int64_t gap_us =
      open_loop ? std::max<int64_t>(
                      static_cast<int64_t>(1e6 / options_.open_loop_qps), 1)
                : 0;
  int64_t next_arrival_us = start_us;

  while (true) {
    int64_t now_us = MonotonicMicros();
    if (now_us >= end_us) break;
    if (!measuring_ && now_us >= warmup_end_us) {
      measuring_ = true;
      measure_start_us = now_us;
      ResetMeasurement();
    }

    if (open_loop) {
      while (next_arrival_us <= now_us) {
        next_arrival_us += gap_us;
        if (backlog_.size() >= options_.max_backlog) {
          ++report_.backlog_dropped;
          continue;
        }
        backlog_.push_back(NextTarget());
      }
      for (size_t i = 0; i < conns_.size(); ++i) {
        if (conns_[i].fd < 0) OpenConn(i);
        if (backlog_.empty()) continue;
        MaybeIssue(i);
      }
    } else {
      // Closed loop: reopen any connection that died and keep one request
      // outstanding everywhere.
      for (size_t i = 0; i < conns_.size(); ++i) {
        if (conns_[i].fd < 0) OpenConn(i);
        MaybeIssue(i);
      }
    }

    int timeout_ms = 5;
    if (open_loop) {
      int64_t to_next = (next_arrival_us - MonotonicMicros()) / 1000;
      timeout_ms = static_cast<int>(std::clamp<int64_t>(to_next, 0, 5));
    }
    int64_t to_boundary_ms =
        ((measuring_ ? end_us : warmup_end_us) - MonotonicMicros()) / 1000;
    timeout_ms = static_cast<int>(
        std::clamp<int64_t>(to_boundary_ms, 0, timeout_ms));
    loop_.PollOnce(timeout_ms);
  }

  // Drain: let in-flight responses land, but issue nothing new.
  stop_issuing_ = true;
  const int64_t drain_end_us = MonotonicMicros() + 200 * 1000;
  while (MonotonicMicros() < drain_end_us) {
    bool any_inflight = false;
    for (const Conn& c : conns_) any_inflight |= c.inflight;
    if (!any_inflight) break;
    loop_.PollOnce(5);
  }
  const int64_t finish_us = MonotonicMicros();

  for (size_t i = 0; i < conns_.size(); ++i) {
    CloseConn(i, /*reconnect=*/false);
  }

  report_.duration_s =
      static_cast<double>(finish_us - measure_start_us) / 1e6;
  if (report_.duration_s > 0) {
    report_.qps = static_cast<double>(report_.responses_ok) /
                  report_.duration_s;
  }
  report_.p50_ms = static_cast<double>(latency_.QuantileMicros(0.50)) / 1000;
  report_.p90_ms = static_cast<double>(latency_.QuantileMicros(0.90)) / 1000;
  report_.p95_ms = static_cast<double>(latency_.QuantileMicros(0.95)) / 1000;
  report_.p99_ms = static_cast<double>(latency_.QuantileMicros(0.99)) / 1000;
  report_.mean_ms = latency_.mean_micros() / 1000;
  report_.max_ms = static_cast<double>(latency_.max_micros()) / 1000;
  return report_;
}

}  // namespace flowercdn
