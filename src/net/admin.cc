#include "net/admin.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "util/logging.h"

namespace flowercdn {

bool AdminHandler::Handle(const std::string& target, Response* out) {
  if (target == "/healthz") {
    ++requests_;
    out->body = "ok\n";
    return true;
  }
  if (target == "/metrics") {
    ++requests_;
    if (!metrics_fn_) {
      out->status = 404;
      out->reason = "Not Found";
      out->body = "metrics not wired\n";
      return true;
    }
    out->content_type = "text/plain; version=0.0.4; charset=utf-8";
    out->body = metrics_fn_();
    return true;
  }
  if (target == "/statusz") {
    ++requests_;
    if (!statusz_fn_) {
      out->status = 404;
      out->reason = "Not Found";
      out->body = "statusz not wired\n";
      return true;
    }
    out->content_type = "application/json";
    out->body = statusz_fn_();
    return true;
  }
  return false;
}

AdminServer::AdminServer(EventLoop* loop, AdminHandler* handler,
                         Options options)
    : loop_(loop), handler_(handler), options_(std::move(options)) {}

AdminServer::~AdminServer() { CloseAll(); }

void AdminServer::CloseAll() {
  for (auto& [id, conn] : conns_) {
    loop_->Remove(conn.fd);
    ::close(conn.fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) {
    loop_->Remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

bool AdminServer::Listen() {
  FLOWERCDN_CHECK(listen_fd_ < 0) << "already listening";
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  FLOWERCDN_CHECK(fd >= 0) << "socket(): " << strerror(errno);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  int flags = ::fcntl(fd, F_GETFL, 0);
  FLOWERCDN_CHECK(flags >= 0 &&
                  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0)
      << "fcntl(): " << strerror(errno);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    FLOWERCDN_LOG(kWarning) << "admin: bind(" << options_.host << ":"
                            << options_.port << "): " << strerror(errno);
    ::close(fd);
    return false;
  }
  FLOWERCDN_CHECK(::listen(fd, 64) == 0) << "listen(): " << strerror(errno);
  socklen_t len = sizeof(addr);
  FLOWERCDN_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr),
                                &len) == 0)
      << "getsockname(): " << strerror(errno);
  port_ = ntohs(addr.sin_port);

  listen_fd_ = fd;
  loop_->Add(fd, EventLoop::kReadable, [this](uint32_t) { AcceptReady(); });
  return true;
}

void AdminServer::AcceptReady() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      FLOWERCDN_LOG(kWarning) << "admin: accept(): " << strerror(errno);
      return;
    }
    if (conns_.size() >= options_.max_connections) {
      ::close(fd);
      continue;
    }
    uint64_t id = next_conn_id_++;
    Conn& conn = conns_[id];
    conn.fd = fd;
    loop_->Add(fd, EventLoop::kReadable, [this, id](uint32_t events) {
      if ((events & EventLoop::kWritable) != 0) TryFlush(id);
      if ((events & EventLoop::kReadable) != 0) OnReadable(id);
    });
  }
}

void AdminServer::CloseConn(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  loop_->Remove(it->second.fd);
  ::close(it->second.fd);
  conns_.erase(it);
}

void AdminServer::OnReadable(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  char buf[4096];
  while (true) {
    ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      CloseConn(id);
      return;
    }
    if (n == 0) {
      CloseConn(id);
      return;
    }
    conn.parser.Append(buf, static_cast<size_t>(n));
    if (static_cast<size_t>(n) < sizeof(buf)) break;
  }

  HttpRequest req;
  while (!conn.close_after_write && conn.parser.Next(&req)) {
    AdminHandler::Response resp;
    if (req.method != "GET") {
      resp.status = 405;
      resp.reason = "Method Not Allowed";
      resp.body = "GET only\n";
    } else if (!handler_->Handle(req.target, &resp)) {
      resp.status = 404;
      resp.reason = "Not Found";
      resp.body = "unknown admin path\n";
    }
    conn.out.append(BuildHttpResponse(
        resp.status, resp.reason, {{"Content-Type", resp.content_type}},
        resp.body));
  }
  if (conn.parser.failed()) conn.close_after_write = true;
  TryFlush(id);
}

void AdminServer::TryFlush(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  while (conn.out_offset < conn.out.size()) {
    ssize_t n = ::write(conn.fd, conn.out.data() + conn.out_offset,
                        conn.out.size() - conn.out_offset);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      CloseConn(id);
      return;
    }
    conn.out_offset += static_cast<size_t>(n);
  }
  if (conn.out_offset >= conn.out.size()) {
    conn.out.clear();
    conn.out_offset = 0;
    if (conn.close_after_write) {
      CloseConn(id);
      return;
    }
    if (conn.want_writable) {
      conn.want_writable = false;
      loop_->Update(conn.fd, EventLoop::kReadable);
    }
    return;
  }
  if (!conn.want_writable) {
    conn.want_writable = true;
    loop_->Update(conn.fd, EventLoop::kReadable | EventLoop::kWritable);
  }
}

}  // namespace flowercdn
