#ifndef FLOWERCDN_NET_EVENT_LOOP_H_
#define FLOWERCDN_NET_EVENT_LOOP_H_

#include <cstdint>
#include <unordered_map>

#include "obs/latency_histogram.h"
#include "util/function.h"

namespace flowercdn {

/// Thin epoll wrapper: register a callback per fd, poll once with a
/// timeout, dispatch ready events. Single-threaded, like everything else
/// in the runtime — the cluster node is one event loop interleaving
/// socket readiness with the simulator's virtual clock (NodeHost).
///
/// Callbacks may Update/Remove any fd (including their own) during
/// dispatch: removal is generation-checked, so a ready event for an fd
/// that was removed — or removed and re-added — inside the same poll
/// batch is not delivered to the stale callback. The running closure is
/// moved out of the registry for the duration of its call, so removing
/// its own fd never destroys the closure mid-execution.
class EventLoop {
 public:
  /// Bitmask passed to Add/Update and into callbacks. Values match
  /// EPOLLIN/EPOLLOUT so translation is free; error/hangup conditions are
  /// folded into kReadable (a read will surface the error).
  static constexpr uint32_t kReadable = 0x001;  // EPOLLIN
  static constexpr uint32_t kWritable = 0x004;  // EPOLLOUT

  using FdCallback = MoveOnlyFn<void(uint32_t events)>;

  EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;
  ~EventLoop();

  /// Registers `fd` (not already registered) for `events`. The loop does
  /// not own the fd — the caller closes it after Remove().
  void Add(int fd, uint32_t events, FdCallback cb);

  /// Changes the interest mask of a registered fd.
  void Update(int fd, uint32_t events);

  /// Unregisters a fd. Safe to call from inside its own callback.
  void Remove(int fd);

  bool Has(int fd) const { return fds_.count(fd) > 0; }
  size_t watched_fds() const { return fds_.size(); }

  /// Waits up to `timeout_ms` (0 = just drain what's ready, -1 = block)
  /// for readiness and dispatches every ready callback once. Returns the
  /// number of callbacks dispatched.
  int PollOnce(int timeout_ms);

  // --- Health instrumentation ----------------------------------------------
  // Always-on wall-clock histograms (two clock_gettime calls per poll and
  // per callback — noise next to epoll_wait itself). A loop whose callback
  // p99 grows is a loop that can no longer keep its time_scale promise.

  /// Time spent blocked inside epoll_wait, per PollOnce call.
  const LatencyHistogram& poll_wait() const { return poll_wait_; }
  /// Wall duration of each dispatched fd callback.
  const LatencyHistogram& callback_duration() const {
    return callback_duration_;
  }
  uint64_t polls() const { return polls_; }

 private:
  struct Entry {
    FdCallback cb;
    uint32_t events = 0;
    uint64_t generation = 0;
  };

  int epoll_fd_ = -1;
  uint64_t next_generation_ = 1;
  uint64_t polls_ = 0;
  LatencyHistogram poll_wait_;
  LatencyHistogram callback_duration_;
  std::unordered_map<int, Entry> fds_;
};

}  // namespace flowercdn

#endif  // FLOWERCDN_NET_EVENT_LOOP_H_
