#ifndef FLOWERCDN_NET_TCP_TRANSPORT_H_
#define FLOWERCDN_NET_TCP_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/event_loop.h"
#include "sim/network.h"
#include "sim/transport.h"
#include "sim/types.h"
#include "wire/frame.h"

namespace flowercdn {

class StatsRegistry;

/// One process of a cluster deployment: where it listens and how peers
/// reach it.
struct ClusterMember {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// Transport backend for multi-process clusters: carried messages whose
/// destination peer is owned by another rank are wire-encoded, framed
/// (src/wire frame layout) and streamed over a persistent TCP connection
/// to that rank; messages to locally-owned peers short-circuit straight
/// back into the simulator. Fully non-blocking, driven by the host's
/// EventLoop plus a Tick() for reconnect backoff deadlines.
///
/// Connections are asymmetric: each rank dials one *outbound* connection
/// per remote rank it sends to (write-only), and accepts *inbound*
/// connections on its listen socket (read-only). There is no handshake —
/// every frame carries everything the receiver needs — so a connection is
/// usable the moment connect() completes, and frames queued while the
/// connection is still in progress (cluster start skew) simply flush when
/// it does.
///
/// Backpressure and loss are explicit, never silent:
///  * past `queue_high_watermark` queued bytes a connection is flagged
///    backpressured (counted + gauge-exported) until it drains below
///    `queue_low_watermark`;
///  * a message that would push the queue past `queue_hard_cap` is dropped
///    and accounted through Network::NoteTransportDrop, exactly like a UDP
///    send-buffer drop — the sender's RPC timeout is the recovery path;
///  * a torn connection keeps its queue (minus the partially-written frame,
///    which is resent from its start on the fresh stream) and redials with
///    exponential backoff.
///
/// The accepted pool is capped: one past the cap, the least recently
/// active inbound connection is evicted. A stream whose FrameAssembler
/// latches failed (malformed header, oversized claim) or whose payload
/// does not decode is counted and torn down — never trusted further.
class TcpTransport : public Transport {
 public:
  struct Options {
    /// Queued-bytes level above which a connection counts as
    /// backpressured (soft signal, nothing is dropped yet).
    size_t queue_high_watermark = 4u << 20;
    /// Level the queue must drain below to clear the backpressure flag.
    size_t queue_low_watermark = 1u << 20;
    /// Hard per-connection cap: a frame that would exceed it is dropped
    /// and accounted as a transport drop.
    size_t queue_hard_cap = 64u << 20;
    /// Cap on concurrently accepted inbound connections.
    size_t max_accepted = 128;
    /// Reconnect backoff: first retry after `reconnect_initial_ms`,
    /// doubling up to `reconnect_max_ms`.
    int reconnect_initial_ms = 50;
    int reconnect_max_ms = 2000;
    /// Decode-side cap on one frame's payload (oversized-claim rejection).
    size_t max_frame_payload = kMaxFramePayload;
  };

  /// Maps a peer identity to the rank that hosts it. Must be a pure
  /// function, identical across every rank of the cluster.
  using OwnerFn = std::function<int(PeerId)>;

  /// `members[self_rank]` is this process; Listen() binds its port.
  /// `stats` (optional) receives event counters as they happen; gauges are
  /// pushed by ExportGauges().
  TcpTransport(Network* network, EventLoop* loop, int self_rank,
               std::vector<ClusterMember> members, OwnerFn owner,
               Options options, StatsRegistry* stats);
  TcpTransport(Network* network, EventLoop* loop, int self_rank,
               std::vector<ClusterMember> members, OwnerFn owner)
      : TcpTransport(network, loop, self_rank, std::move(members),
                     std::move(owner), Options(), nullptr) {}
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;
  ~TcpTransport() override;

  /// Binds and listens on members[self_rank].port (port 0 lets the kernel
  /// pick — see listen_port()). Returns false on bind failure.
  bool Listen();
  uint16_t listen_port() const { return listen_port_; }

  void Carry(PeerId src, PeerId dst, SimDuration latency,
             size_t accounted_bytes, MessagePtr msg) override;

  const char* name() const override { return "tcp"; }

  /// Fires due reconnect attempts. Returns milliseconds until the next
  /// backoff deadline, or -1 when no timer is pending. Call whenever the
  /// host loop wakes up.
  int Tick();

  /// Closes every connection and the listener.
  void CloseAll();

  /// Pushes the level-style stats (queue depth, pool occupancy) into the
  /// registry as net.tcp.* gauges. Event counters are added incrementally
  /// as they happen.
  void ExportGauges();

  // --- Socket-level stats ---------------------------------------------------
  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t frames_received() const { return frames_received_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }
  /// Frames dropped against the per-connection hard cap (each also counted
  /// in the network's transport_drop family).
  uint64_t frames_dropped() const { return frames_dropped_; }
  /// Inbound streams torn down for framing or payload decode failures.
  uint64_t decode_errors() const { return decode_errors_; }
  uint64_t reconnects() const { return reconnects_; }
  /// Dials that never reached kConnected (synchronous or async failure).
  uint64_t connect_failures() const { return connect_failures_; }
  /// Established connections lost (peer closed, reset, write failure).
  uint64_t conn_drops() const { return conn_drops_; }
  uint64_t backpressure_events() const { return backpressure_events_; }
  uint64_t accepted_evicted() const { return accepted_evicted_; }
  /// Total queued-but-unsent bytes across outbound connections.
  size_t queued_bytes() const { return queued_bytes_total_; }
  size_t peak_queued_bytes() const { return peak_queued_bytes_; }
  size_t connected_ranks() const;
  size_t accepted_connections() const { return inbound_.size(); }

 private:
  struct OutConn {
    enum class State { kIdle, kConnecting, kConnected, kBackoff };
    int fd = -1;
    State state = State::kIdle;
    /// Frame-granular write queue; `first_offset` is how much of the front
    /// frame has been written. Kept across reconnects (offset reset: the
    /// fresh stream restarts at a frame boundary).
    std::deque<std::vector<uint8_t>> queue;
    size_t queue_bytes = 0;
    size_t first_offset = 0;
    bool want_writable = false;
    bool backpressured = false;
    int backoff_ms = 0;
    int64_t next_attempt_ms = 0;  // MonotonicMillis deadline in kBackoff
  };

  struct InConn {
    int fd = -1;
    FrameAssembler assembler;
    uint64_t last_activity = 0;  // use_clock_ stamp for LRU eviction
    explicit InConn(size_t max_payload) : assembler(max_payload) {}
  };

  OutConn& Out(int rank);
  void StartConnect(int rank);
  void HandleConnectResult(int rank);
  void HandleOutReadable(int rank);
  void Disconnect(int rank, const char* why);
  void TryFlush(int rank);
  void SetQueueBytes(OutConn& c, size_t bytes);
  void AcceptReady();
  void EvictOldestInbound();
  void ReadInbound(int fd);
  void CloseInbound(int fd);
  void CountEvent(const char* name, uint64_t n = 1);

  Network* network_;
  EventLoop* loop_;
  int self_rank_;
  std::vector<ClusterMember> members_;
  OwnerFn owner_;
  Options options_;
  StatsRegistry* stats_;

  int listen_fd_ = -1;
  uint16_t listen_port_ = 0;
  std::unordered_map<int, OutConn> outbound_;   // rank -> connection
  std::unordered_map<int, InConn> inbound_;     // fd -> connection
  uint64_t use_clock_ = 0;
  std::vector<uint8_t> frame_;  // reused per-carry scratch buffer

  uint64_t frames_sent_ = 0;
  uint64_t frames_received_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
  uint64_t frames_dropped_ = 0;
  uint64_t decode_errors_ = 0;
  uint64_t reconnects_ = 0;
  uint64_t connect_failures_ = 0;
  uint64_t conn_drops_ = 0;
  uint64_t backpressure_events_ = 0;
  uint64_t accepted_evicted_ = 0;
  size_t queued_bytes_total_ = 0;
  size_t peak_queued_bytes_ = 0;
};

}  // namespace flowercdn

#endif  // FLOWERCDN_NET_TCP_TRANSPORT_H_
