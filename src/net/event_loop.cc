#include "net/event_loop.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <utility>
#include <vector>

#include "net/clock.h"
#include "util/logging.h"

namespace flowercdn {

namespace {

uint32_t ToEpoll(uint32_t events) {
  uint32_t mask = 0;
  if ((events & EventLoop::kReadable) != 0) mask |= EPOLLIN;
  if ((events & EventLoop::kWritable) != 0) mask |= EPOLLOUT;
  return mask;
}

uint32_t FromEpoll(uint32_t mask) {
  uint32_t events = 0;
  if ((mask & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP)) != 0) {
    events |= EventLoop::kReadable;
  }
  if ((mask & EPOLLOUT) != 0) events |= EventLoop::kWritable;
  return events;
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  FLOWERCDN_CHECK(epoll_fd_ >= 0) << "epoll_create1(): " << strerror(errno);
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::Add(int fd, uint32_t events, FdCallback cb) {
  FLOWERCDN_CHECK(fds_.count(fd) == 0) << "fd " << fd << " already watched";
  Entry entry;
  entry.cb = std::move(cb);
  entry.events = events;
  entry.generation = next_generation_++;
  epoll_event ev{};
  ev.events = ToEpoll(events);
  ev.data.fd = fd;
  FLOWERCDN_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0)
      << "epoll_ctl(ADD, " << fd << "): " << strerror(errno);
  fds_.emplace(fd, std::move(entry));
}

void EventLoop::Update(int fd, uint32_t events) {
  auto it = fds_.find(fd);
  FLOWERCDN_CHECK(it != fds_.end()) << "fd " << fd << " not watched";
  if (it->second.events == events) return;
  it->second.events = events;
  epoll_event ev{};
  ev.events = ToEpoll(events);
  ev.data.fd = fd;
  FLOWERCDN_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0)
      << "epoll_ctl(MOD, " << fd << "): " << strerror(errno);
}

void EventLoop::Remove(int fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return;
  // The fd may already be closed by the caller; ENOENT/EBADF are harmless.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  fds_.erase(it);
}

int EventLoop::PollOnce(int timeout_ms) {
  epoll_event ready[64];
  int n;
  ++polls_;
  int64_t wait_start = MonotonicMicros();
  do {
    n = ::epoll_wait(epoll_fd_, ready, 64, timeout_ms);
  } while (n < 0 && errno == EINTR);
  FLOWERCDN_CHECK(n >= 0) << "epoll_wait(): " << strerror(errno);
  poll_wait_.Record(
      static_cast<uint64_t>(MonotonicMicros() - wait_start));

  // Snapshot (fd, generation) first: a callback may Remove any fd in this
  // batch (or Remove+Add, recycling the number with a new generation), and
  // such an entry must not receive the stale readiness.
  struct Pending {
    int fd;
    uint64_t generation;
    uint32_t events;
  };
  std::vector<Pending> batch;
  batch.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto it = fds_.find(ready[i].data.fd);
    if (it == fds_.end()) continue;
    batch.push_back(Pending{ready[i].data.fd, it->second.generation,
                            FromEpoll(ready[i].events)});
  }

  int dispatched = 0;
  for (const Pending& p : batch) {
    auto it = fds_.find(p.fd);
    if (it == fds_.end() || it->second.generation != p.generation) continue;
    ++dispatched;
    // Run the closure out of the map node: a callback that Removes its own
    // fd erases the entry, and executing from inside it would free the
    // closure's captures mid-call. Restore it afterwards only if the same
    // registration (fd + generation) still exists.
    FdCallback cb = std::move(it->second.cb);
    int64_t cb_start = MonotonicMicros();
    cb(p.events);
    callback_duration_.Record(
        static_cast<uint64_t>(MonotonicMicros() - cb_start));
    it = fds_.find(p.fd);
    if (it != fds_.end() && it->second.generation == p.generation) {
      it->second.cb = std::move(cb);
    }
  }
  return dispatched;
}

}  // namespace flowercdn
