#ifndef FLOWERCDN_NET_CLOCK_H_
#define FLOWERCDN_NET_CLOCK_H_

#include <time.h>

#include <cstdint>

namespace flowercdn {

/// Monotonic wall clock, for everything real-time in src/net: pacing the
/// simulator against wall time, reconnect backoff deadlines, loadgen
/// latency measurement. Never use the simulated clock for these — the two
/// clocks advance at different rates by design (NodeHost time_scale).
inline int64_t MonotonicMicros() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
}

inline int64_t MonotonicMillis() { return MonotonicMicros() / 1000; }

}  // namespace flowercdn

#endif  // FLOWERCDN_NET_CLOCK_H_
