#include "net/http.h"

#include <algorithm>
#include <cctype>

namespace flowercdn {

namespace {

bool IEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Locates the end of a message head ("\r\n\r\n", tolerating bare "\n\n").
/// Returns npos when the head is still incomplete.
size_t FindHeadEnd(const std::string& buf, size_t* head_len) {
  // Take whichever terminator occurs first: a bare-LF head followed by a
  // pipelined CRLF head must not resolve at the later CRLF terminator.
  size_t crlf = buf.find("\r\n\r\n");
  size_t lf = buf.find("\n\n");
  if (crlf != std::string::npos &&
      (lf == std::string::npos || crlf < lf)) {
    *head_len = crlf + 4;
    return crlf;
  }
  if (lf != std::string::npos) {
    *head_len = lf + 2;
    return lf;
  }
  return std::string::npos;
}

/// Splits a head into lines (without terminators). The first line is the
/// request/status line, the rest are header lines.
std::vector<std::string_view> SplitLines(std::string_view head) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start < head.size()) {
    size_t nl = head.find('\n', start);
    if (nl == std::string_view::npos) nl = head.size();
    std::string_view line = head.substr(start, nl - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) lines.push_back(line);
    start = nl + 1;
  }
  return lines;
}

bool ParseHeaderLine(std::string_view line, HttpHeader* out) {
  size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  out->name = std::string(Trim(line.substr(0, colon)));
  out->value = std::string(Trim(line.substr(colon + 1)));
  return true;
}

}  // namespace

const std::string* FindHeader(const std::vector<HttpHeader>& headers,
                              std::string_view name) {
  for (const HttpHeader& h : headers) {
    if (IEquals(h.name, name)) return &h.value;
  }
  return nullptr;
}

// --- Request parser -----------------------------------------------------------

void HttpRequestParser::Fail(const std::string& reason) {
  failed_ = true;
  error_ = reason;
  buf_.clear();
}

void HttpRequestParser::Append(const char* data, size_t n) {
  if (failed_) return;
  buf_.append(data, n);
}

bool HttpRequestParser::Next(HttpRequest* out) {
  if (failed_) return false;
  size_t head_len = 0;
  if (FindHeadEnd(buf_, &head_len) == std::string::npos) {
    if (buf_.size() > max_head_bytes_) Fail("request head too large");
    return false;
  }
  if (head_len > max_head_bytes_) {
    Fail("request head too large");
    return false;
  }

  std::vector<std::string_view> lines =
      SplitLines(std::string_view(buf_).substr(0, head_len));
  if (lines.empty()) {
    Fail("empty request head");
    return false;
  }

  HttpRequest req;
  {
    std::string_view line = lines[0];
    size_t sp1 = line.find(' ');
    size_t sp2 = sp1 == std::string_view::npos
                     ? std::string_view::npos
                     : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
      Fail("malformed request line");
      return false;
    }
    req.method = std::string(line.substr(0, sp1));
    req.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
    req.version = std::string(Trim(line.substr(sp2 + 1)));
    if (req.version != "HTTP/1.1" && req.version != "HTTP/1.0") {
      Fail("unsupported version " + req.version);
      return false;
    }
  }
  for (size_t i = 1; i < lines.size(); ++i) {
    HttpHeader h;
    if (!ParseHeaderLine(lines[i], &h)) {
      Fail("malformed header line");
      return false;
    }
    req.headers.push_back(std::move(h));
  }
  const std::string* content_length = req.Header("Content-Length");
  if (content_length != nullptr && *content_length != "0") {
    Fail("request bodies are not supported");
    return false;
  }

  buf_.erase(0, head_len);
  *out = std::move(req);
  return true;
}

// --- Response parser ----------------------------------------------------------

void HttpResponseParser::Fail(const std::string& reason) {
  failed_ = true;
  error_ = reason;
  buf_.clear();
}

void HttpResponseParser::Append(const char* data, size_t n) {
  if (failed_) return;
  buf_.append(data, n);
}

bool HttpResponseParser::Next(HttpResponse* out) {
  if (failed_) return false;
  size_t head_len = 0;
  if (FindHeadEnd(buf_, &head_len) == std::string::npos) {
    if (buf_.size() > max_head_bytes_) Fail("response head too large");
    return false;
  }

  std::vector<std::string_view> lines =
      SplitLines(std::string_view(buf_).substr(0, head_len));
  if (lines.empty()) {
    Fail("empty response head");
    return false;
  }

  HttpResponse resp;
  {
    std::string_view line = lines[0];
    size_t sp1 = line.find(' ');
    if (sp1 == std::string_view::npos ||
        line.substr(0, 5) != "HTTP/") {
      Fail("malformed status line");
      return false;
    }
    size_t sp2 = line.find(' ', sp1 + 1);
    std::string_view code = line.substr(
        sp1 + 1, sp2 == std::string_view::npos ? std::string_view::npos
                                               : sp2 - sp1 - 1);
    resp.status = 0;
    for (char ch : code) {
      if (ch < '0' || ch > '9') {
        Fail("malformed status code");
        return false;
      }
      resp.status = resp.status * 10 + (ch - '0');
    }
    if (sp2 != std::string_view::npos) {
      resp.reason = std::string(Trim(line.substr(sp2 + 1)));
    }
  }
  for (size_t i = 1; i < lines.size(); ++i) {
    HttpHeader h;
    if (!ParseHeaderLine(lines[i], &h)) {
      Fail("malformed header line");
      return false;
    }
    resp.headers.push_back(std::move(h));
  }

  const std::string* content_length = resp.Header("Content-Length");
  if (content_length == nullptr) {
    Fail("response without Content-Length");
    return false;
  }
  size_t body_len = 0;
  for (char ch : *content_length) {
    if (ch < '0' || ch > '9') {
      Fail("malformed Content-Length");
      return false;
    }
    body_len = body_len * 10 + static_cast<size_t>(ch - '0');
    if (body_len > max_body_bytes_) {
      Fail("response body too large");
      return false;
    }
  }
  if (buf_.size() < head_len + body_len) return false;  // body incomplete

  resp.body = buf_.substr(head_len, body_len);
  buf_.erase(0, head_len + body_len);
  *out = std::move(resp);
  return true;
}

// --- Builders -----------------------------------------------------------------

std::string BuildHttpRequest(std::string_view target,
                             const std::vector<HttpHeader>& headers) {
  std::string out;
  out.reserve(64 + target.size());
  out.append("GET ").append(target).append(" HTTP/1.1\r\n");
  for (const HttpHeader& h : headers) {
    out.append(h.name).append(": ").append(h.value).append("\r\n");
  }
  out.append("\r\n");
  return out;
}

std::string BuildHttpResponse(int status, std::string_view reason,
                              const std::vector<HttpHeader>& headers,
                              std::string_view body) {
  std::string out;
  out.reserve(128 + body.size());
  out.append("HTTP/1.1 ").append(std::to_string(status)).append(" ");
  out.append(reason).append("\r\n");
  for (const HttpHeader& h : headers) {
    out.append(h.name).append(": ").append(h.value).append("\r\n");
  }
  out.append("Content-Length: ")
      .append(std::to_string(body.size()))
      .append("\r\n\r\n");
  out.append(body);
  return out;
}

}  // namespace flowercdn
