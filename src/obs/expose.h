#ifndef FLOWERCDN_OBS_EXPOSE_H_
#define FLOWERCDN_OBS_EXPOSE_H_

#include <string>
#include <string_view>

#include "obs/latency_histogram.h"
#include "obs/stats.h"

namespace flowercdn {

/// Prometheus text-exposition rendering (format version 0.0.4) for the obs
/// instruments, so the live cluster's /metrics endpoint and the simulator
/// share one metrics namespace: every StatsRegistry counter/gauge exports
/// under `flowercdn_<name with dots replaced>`.

/// Sanitizes an internal dotted instrument name ("net.tcp.frames_sent")
/// into a Prometheus metric name ("flowercdn_net_tcp_frames_sent"). Any
/// character outside [a-zA-Z0-9_] becomes '_'.
std::string PrometheusName(std::string_view name);

/// Appends every counter (as `counter`) and gauge (as `gauge`) of the
/// registry in name order, each with a # TYPE line. Counters export their
/// cumulative totals, so scrape-over-scrape values are monotone.
void AppendPrometheusStats(const StatsRegistry& stats, std::string* out);

/// Appends one latency histogram as a Prometheus summary in seconds:
/// quantile samples (0.5 / 0.9 / 0.99 / 0.999), `<name>_sum` and
/// `<name>_count`. `name` must already be a valid metric name (use
/// PrometheusName). Cumulative, like everything else on /metrics.
void AppendPrometheusSummary(std::string_view name,
                             const LatencyHistogram& hist, std::string* out);

}  // namespace flowercdn

#endif  // FLOWERCDN_OBS_EXPOSE_H_
