#include "obs/sampler.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace flowercdn {

DistSummary DistSummary::FromValues(std::vector<uint64_t> values) {
  DistSummary out;
  out.count = values.size();
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  out.min = values.front();
  out.max = values.back();
  uint64_t sum = 0;
  for (uint64_t v : values) sum += v;
  out.mean = static_cast<double>(sum) / static_cast<double>(values.size());
  // Nearest-rank p95: smallest value with >= 95% of the population at or
  // below it. Exact on the sorted data, no interpolation.
  size_t rank = (values.size() * 95 + 99) / 100;  // ceil(0.95 * n)
  out.p95 = values[rank - 1];
  return out;
}

OverlaySampler::OverlaySampler(Simulator* sim, SimDuration interval)
    : sim_(sim), interval_(interval) {
  FLOWERCDN_CHECK(sim_ != nullptr);
  FLOWERCDN_CHECK(interval_ > 0);
}

void OverlaySampler::Start(Probe probe) {
  FLOWERCDN_CHECK(probe != nullptr);
  FLOWERCDN_CHECK(probe_ == nullptr) << "sampler already started";
  probe_ = std::move(probe);
  sim_->Schedule(interval_, [this] { Tick(); });
}

void OverlaySampler::Tick() {
  OverlaySample sample = probe_();
  sample.time = sim_->now();
  samples_.push_back(std::move(sample));
  sim_->Schedule(interval_, [this] { Tick(); });
}

TrafficSampler::TrafficSampler(Simulator* sim, const Network* network,
                               SimDuration interval)
    : sim_(sim), network_(network), interval_(interval) {
  FLOWERCDN_CHECK(sim_ != nullptr);
  FLOWERCDN_CHECK(network_ != nullptr);
  FLOWERCDN_CHECK(interval_ > 0);
}

void TrafficSampler::Start() {
  sim_->Schedule(interval_, [this] { Tick(); });
}

void TrafficSampler::Tick() {
  Point p;
  p.time = sim_->now();
  p.messages_sent = network_->messages_sent();
  p.messages_dropped = network_->messages_dropped();
  p.bytes_sent = network_->bytes_sent();
  p.traffic = network_->traffic();
  points_.push_back(p);
  sim_->Schedule(interval_, [this] { Tick(); });
}

}  // namespace flowercdn
