#include "obs/stats.h"

#include <utility>

#include "util/logging.h"

namespace flowercdn {

StatsRegistry::StatsRegistry(ClockFn clock, SimDuration bucket)
    : clock_(std::move(clock)), bucket_(bucket) {
  FLOWERCDN_CHECK(clock_ != nullptr);
  FLOWERCDN_CHECK(bucket_ > 0);
}

size_t StatsRegistry::CurrentBucket() const {
  SimTime now = clock_();
  FLOWERCDN_CHECK(now >= 0);
  return static_cast<size_t>(now / bucket_);
}

StatsCounter* StatsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    std::string key(name);
    auto owned =
        std::unique_ptr<StatsCounter>(new StatsCounter(key, this));
    it = counters_.emplace(std::move(key), std::move(owned)).first;
  }
  return it->second.get();
}

StatsGauge* StatsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    std::string key(name);
    auto owned = std::unique_ptr<StatsGauge>(new StatsGauge(key, this));
    it = gauges_.emplace(std::move(key), std::move(owned)).first;
  }
  return it->second.get();
}

void StatsCounter::Add(uint64_t n) {
  total_ += n;
  size_t bucket = registry_->CurrentBucket();
  if (series_.size() <= bucket) series_.resize(bucket + 1, 0);
  series_[bucket] += n;
}

void StatsGauge::Set(double value) {
  value_ = value;
  size_t bucket = registry_->CurrentBucket();
  if (series_.size() <= bucket) series_.resize(bucket + 1, 0.0);
  series_[bucket] = value;
}

std::vector<StatsRegistry::CounterSnapshot> StatsRegistry::SnapshotCounters()
    const {
  std::vector<CounterSnapshot> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.push_back(CounterSnapshot{name, counter->total(), counter->series()});
  }
  return out;
}

std::vector<StatsRegistry::GaugeSnapshot> StatsRegistry::SnapshotGauges()
    const {
  std::vector<GaugeSnapshot> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.push_back(GaugeSnapshot{name, gauge->value(), gauge->series()});
  }
  return out;
}

}  // namespace flowercdn
