#include "obs/expose.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace flowercdn {

namespace {

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  int n = vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, static_cast<size_t>(n) < sizeof(buf)
                                  ? static_cast<size_t>(n)
                                  : sizeof(buf) - 1);
}

constexpr double kQuantiles[] = {0.5, 0.9, 0.99, 0.999};

}  // namespace

std::string PrometheusName(std::string_view name) {
  std::string out = "flowercdn_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendPrometheusStats(const StatsRegistry& stats, std::string* out) {
  for (const auto& c : stats.SnapshotCounters()) {
    std::string name = PrometheusName(c.name);
    AppendF(out, "# TYPE %s counter\n%s %" PRIu64 "\n", name.c_str(),
            name.c_str(), c.total);
  }
  for (const auto& g : stats.SnapshotGauges()) {
    std::string name = PrometheusName(g.name);
    AppendF(out, "# TYPE %s gauge\n%s %.17g\n", name.c_str(), name.c_str(),
            g.value);
  }
}

void AppendPrometheusSummary(std::string_view name,
                             const LatencyHistogram& hist, std::string* out) {
  std::string n(name);
  AppendF(out, "# TYPE %s summary\n", n.c_str());
  for (double q : kQuantiles) {
    AppendF(out, "%s{quantile=\"%g\"} %.9f\n", n.c_str(), q,
            static_cast<double>(hist.QuantileMicros(q)) / 1e6);
  }
  AppendF(out, "%s_sum %.9f\n", n.c_str(),
          static_cast<double>(hist.sum_micros()) / 1e6);
  AppendF(out, "%s_count %" PRIu64 "\n", n.c_str(), hist.count());
}

}  // namespace flowercdn
