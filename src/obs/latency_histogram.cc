#include "obs/latency_histogram.h"

#include <algorithm>
#include <iterator>

namespace flowercdn {

size_t LatencyHistogram::BucketOf(uint64_t micros) {
  if (micros < kSubBuckets) return static_cast<size_t>(micros);
  // Decade d holds [2^(d+4), 2^(d+5)) split into kSubBuckets linear slots.
  int bits = 63 - __builtin_clzll(micros);
  int decade = bits - 4;  // 2^5 == kSubBuckets
  if (decade >= kDecades - 1) decade = kDecades - 2;
  uint64_t base = uint64_t{1} << (decade + 5);
  uint64_t width = base / kSubBuckets;
  size_t sub = static_cast<size_t>((micros - base) / width);
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return static_cast<size_t>(decade + 1) * kSubBuckets + sub;
}

uint64_t LatencyHistogram::BucketUpperBound(size_t bucket) {
  size_t decade = bucket / kSubBuckets;
  size_t sub = bucket % kSubBuckets;
  if (decade == 0) return sub + 1;
  uint64_t base = uint64_t{1} << (decade + 4);
  uint64_t width = base / kSubBuckets;
  return base + (sub + 1) * width;
}

void LatencyHistogram::Record(uint64_t micros) {
  ++buckets_[BucketOf(micros)];
  ++count_;
  sum_ += micros;
  max_ = std::max(max_, micros);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < kDecades * kSubBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::Reset() {
  std::fill(std::begin(buckets_), std::end(buckets_), uint64_t{0});
  count_ = 0;
  sum_ = 0;
  max_ = 0;
}

uint64_t LatencyHistogram::QuantileMicros(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < kDecades * kSubBuckets; ++i) {
    seen += buckets_[i];
    if (seen > rank) return std::min(BucketUpperBound(i), max_);
  }
  return max_;
}

LatencyHistogram LatencyHistogram::DeltaSince(
    const LatencyHistogram& prev) const {
  LatencyHistogram delta;
  for (size_t i = 0; i < kDecades * kSubBuckets; ++i) {
    delta.buckets_[i] =
        buckets_[i] >= prev.buckets_[i] ? buckets_[i] - prev.buckets_[i] : 0;
  }
  delta.count_ = count_ >= prev.count_ ? count_ - prev.count_ : 0;
  delta.sum_ = sum_ >= prev.sum_ ? sum_ - prev.sum_ : 0;
  delta.max_ = max_;
  return delta;
}

}  // namespace flowercdn
