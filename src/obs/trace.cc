#include "obs/trace.h"

#include <cstdio>
#include <fstream>

#include "util/logging.h"

namespace flowercdn {

const char* QueryPhaseName(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::kDRingResolve:
      return "dring_resolve";
    case QueryPhase::kDirQuery:
      return "dir_query";
    case QueryPhase::kSummaryProbe:
      return "summary_probe";
    case QueryPhase::kFetch:
      return "fetch";
    case QueryPhase::kOrigin:
      return "origin";
  }
  return "?";
}

TraceCollector::TraceCollector(size_t max_queries)
    : max_queries_(max_queries),
      // 25 ms buckets to 2 s + overflow: fine enough to separate a one-hop
      // redirect from a multi-hop DHT walk.
      phase_latency_(kNumQueryPhases, Histogram(25.0, 80)),
      dring_hops_(1.0, 32) {}

uint64_t TraceCollector::BeginQuery(PeerId peer, WebsiteId website,
                                    uint32_t object, SimTime now,
                                    bool from_new_client) {
  uint64_t id = next_id_++;
  if (queries_.size() < max_queries_) {
    Query q;
    q.id = id;
    q.peer = peer;
    q.website = website;
    q.object = object;
    q.start = now;
    q.end = now;
    q.from_new_client = from_new_client;
    queries_.push_back(q);
  } else {
    ++overflow_queries_;
  }
  return id;
}

void TraceCollector::AddSpan(uint64_t query, QueryPhase phase, SimTime start,
                             SimTime end, PeerId target, int hops, bool ok) {
  if (query == 0) return;
  FLOWERCDN_CHECK(end >= start) << "span ends before it starts";
  size_t p = static_cast<size_t>(phase);
  FLOWERCDN_CHECK(p < kNumQueryPhases);
  phase_latency_[p].Add(static_cast<double>(end - start));
  if (phase == QueryPhase::kDRingResolve && hops >= 0) {
    dring_hops_.Add(static_cast<double>(hops));
  }
  // Ids are dense from 1, so "stored" == "id fits the queries_ vector".
  if (query > queries_.size()) return;
  Span span;
  span.query = query;
  span.phase = phase;
  span.start = start;
  span.end = end;
  span.peer = queries_[query - 1].peer;
  span.target = target;
  span.hops = hops;
  span.ok = ok;
  spans_.push_back(span);
}

void TraceCollector::AddRemoteSpan(uint64_t trace_id, const char* name,
                                   SimTime now, PeerId peer, PeerId src) {
  if (trace_id == 0) return;
  if (remote_spans_.size() >= max_queries_) return;
  RemoteSpan span;
  span.trace_id = trace_id;
  span.name = name;
  span.time = now;
  span.peer = peer;
  span.src = src;
  remote_spans_.push_back(span);
}

void TraceCollector::EndQuery(uint64_t query, SimTime now, bool hit) {
  if (query == 0 || query > queries_.size()) return;
  Query& q = queries_[query - 1];
  q.end = now;
  q.hit = hit;
  q.finished = true;
}

const Histogram& TraceCollector::phase_latency(QueryPhase phase) const {
  size_t p = static_cast<size_t>(phase);
  FLOWERCDN_CHECK(p < kNumQueryPhases);
  return phase_latency_[p];
}

std::vector<TraceCollector::Span> TraceCollector::SpansOf(
    uint64_t query) const {
  std::vector<Span> out;
  for (const Span& s : spans_) {
    if (s.query == query) out.push_back(s);
  }
  return out;
}

namespace {

/// One trace event line. All values are integers or fixed literals, so the
/// output is byte-deterministic without a general JSON writer.
void WriteEventPrefix(std::ostream& os, bool& first, const char* name,
                      const char* cat, SimTime start, SimTime end, int pid,
                      PeerId tid) {
  if (!first) os << ",\n";
  first = false;
  os << "{\"name\":\"" << name << "\",\"cat\":\"" << cat
     << "\",\"ph\":\"X\",\"ts\":" << start * 1000
     << ",\"dur\":" << (end - start) * 1000 << ",\"pid\":" << pid
     << ",\"tid\":" << tid;
}

/// `"trace_id":"0x<hex>"` — string-valued because trace ids use the full
/// 64-bit range and JSON numbers would lose precision past 2^53.
void WriteTraceIdArg(std::ostream& os, uint64_t trace_id) {
  char buf[32];
  snprintf(buf, sizeof(buf), "0x%llx",
           static_cast<unsigned long long>(trace_id));
  os << ",\"trace_id\":\"" << buf << "\"";
}

}  // namespace

void TraceCollector::WriteChromeTrace(std::ostream& os) const {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  // Process metadata so the viewer labels the track sensibly.
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << export_pid_
     << ",\"args\":{\"name\":\"" << export_process_name_ << "\"}}";
  first = false;
  for (const Query& q : queries_) {
    WriteEventPrefix(os, first, "query", "query", q.start, q.end, export_pid_,
                     q.peer);
    os << ",\"args\":{\"query\":" << q.id << ",\"website\":" << q.website
       << ",\"object\":" << q.object
       << ",\"new_client\":" << (q.from_new_client ? "true" : "false")
       << ",\"hit\":" << (q.hit ? "true" : "false")
       << ",\"finished\":" << (q.finished ? "true" : "false");
    if (dist_prefix_ != 0) WriteTraceIdArg(os, DistributedIdOf(q.id));
    os << "}}";
  }
  for (const Span& s : spans_) {
    WriteEventPrefix(os, first, QueryPhaseName(s.phase), "phase", s.start,
                     s.end, export_pid_, s.peer);
    os << ",\"args\":{\"query\":" << s.query << ",\"target\":" << s.target;
    if (s.hops >= 0) os << ",\"hops\":" << s.hops;
    os << ",\"ok\":" << (s.ok ? "true" : "false");
    if (dist_prefix_ != 0) WriteTraceIdArg(os, DistributedIdOf(s.query));
    os << "}}";
  }
  for (const RemoteSpan& r : remote_spans_) {
    WriteEventPrefix(os, first, r.name, "remote", r.time, r.time, export_pid_,
                     r.peer);
    os << ",\"args\":{\"src\":" << r.src;
    WriteTraceIdArg(os, r.trace_id);
    os << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

Status TraceCollector::WriteChromeTraceFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status(StatusCode::kUnavailable, "cannot open " + path);
  }
  WriteChromeTrace(out);
  out.flush();
  if (!out) {
    return Status(StatusCode::kUnavailable, "write failed: " + path);
  }
  return Status::OK();
}

}  // namespace flowercdn
