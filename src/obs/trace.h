#ifndef FLOWERCDN_OBS_TRACE_H_
#define FLOWERCDN_OBS_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.h"
#include "storage/object_id.h"
#include "util/histogram.h"
#include "util/status.h"

namespace flowercdn {

/// Phases of a resolved client query, in protocol order. A query records
/// one span per phase it actually passes through; DHT-routed queries start
/// with kDRingResolve, petal-internal ones with kSummaryProbe.
enum class QueryPhase : uint8_t {
  kDRingResolve = 0,  // find-successor over the Chord D-ring
  kDirQuery = 1,      // directory lookup (one span per redirect hop)
  kSummaryProbe = 2,  // gossip-summary candidate probe inside the petal
  kFetch = 3,         // provider confirmation / transfer initiation
  kOrigin = 4,        // fallback to the origin web server
};

constexpr size_t kNumQueryPhases = 5;

const char* QueryPhaseName(QueryPhase phase);

/// Collects query-lifecycle traces: per-query spans (who, which phase,
/// when, toward whom, how many DHT hops) plus always-on per-phase latency
/// histograms. Bounded memory: past `max_queries` new queries still feed
/// the histograms but their spans are no longer stored.
///
/// Exports the Chrome trace-event format (chrome://tracing, Perfetto):
/// pid 1 is the deployment, tid is the querying peer, one complete ("X")
/// event per query and per span.
class TraceCollector {
 public:
  explicit TraceCollector(size_t max_queries = 200000);
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  struct Query {
    uint64_t id = 0;
    PeerId peer = kInvalidPeer;
    WebsiteId website = 0;
    uint32_t object = 0;
    SimTime start = 0;
    SimTime end = 0;
    bool from_new_client = false;
    bool hit = false;
    bool finished = false;
  };

  struct Span {
    uint64_t query = 0;
    QueryPhase phase = QueryPhase::kDRingResolve;
    SimTime start = 0;
    SimTime end = 0;
    PeerId peer = kInvalidPeer;    // issuer
    PeerId target = kInvalidPeer;  // bootstrap / directory / provider
    int hops = -1;                 // Chord hop count (kDRingResolve only)
    bool ok = true;                // false: timeout / refusal on this hop
  };

  /// A span recorded on behalf of a query that began on *another* rank of
  /// a cluster deployment: only the 64-bit distributed trace id is known
  /// locally. Exported as a zero-duration event carrying the trace_id so
  /// the cross-rank merge can stitch it under the originating query.
  struct RemoteSpan {
    uint64_t trace_id = 0;
    const char* name = "";  // must point at static storage
    SimTime time = 0;
    PeerId peer = kInvalidPeer;
    PeerId src = kInvalidPeer;  // sender of the message being handled
  };

  // --- Distributed (cluster) mode ------------------------------------------
  // All defaults keep single-process exports byte-identical: no prefix, no
  // trace_id args, pid 1, process name "flowercdn-sim".

  /// Installs the rank's distributed-id prefix (e.g. (rank+1) << 48).
  /// Non-zero makes DistributedIdOf produce cluster-unique trace ids and
  /// the Chrome export annotate every query/span with its trace_id.
  void SetDistributedPrefix(uint64_t prefix) { dist_prefix_ = prefix; }
  uint64_t distributed_prefix() const { return dist_prefix_; }

  /// Cluster-unique trace id of a local query id — `prefix | local_id` —
  /// or 0 (untraced) while no prefix is installed.
  uint64_t DistributedIdOf(uint64_t local_id) const {
    return dist_prefix_ == 0 ? 0 : dist_prefix_ | local_id;
  }

  /// Local query id of a distributed trace id minted by this collector
  /// (0 when the id came from another rank or no prefix is installed).
  uint64_t LocalIdOf(uint64_t trace_id) const {
    if (dist_prefix_ == 0 || (trace_id & dist_prefix_) != dist_prefix_) {
      return 0;
    }
    return trace_id & ~dist_prefix_;
  }

  /// How the Chrome export labels this process (one rank = one pid in the
  /// merged cluster trace).
  void SetExportProcess(int pid, std::string name) {
    export_pid_ = pid;
    export_process_name_ = std::move(name);
  }

  /// Records work done locally for a foreign-rank query. Bounded by the
  /// same cap as spans; `name` must be a static string.
  void AddRemoteSpan(uint64_t trace_id, const char* name, SimTime now,
                     PeerId peer, PeerId src);
  const std::vector<RemoteSpan>& remote_spans() const { return remote_spans_; }

  /// Starts a query trace; returns its id (never 0). Pass the id to
  /// AddSpan/EndQuery. Query `max_queries+1` onward is histogram-only.
  uint64_t BeginQuery(PeerId peer, WebsiteId website, uint32_t object,
                      SimTime now, bool from_new_client);

  /// Records one phase span. `query` 0 (untraced caller) is a no-op; ids
  /// past the storage cap update the phase histograms only.
  void AddSpan(uint64_t query, QueryPhase phase, SimTime start, SimTime end,
               PeerId target, int hops = -1, bool ok = true);

  /// Marks the query resolved. Queries never finished (peer died mid-query)
  /// keep finished == false and are exported with zero duration.
  void EndQuery(uint64_t query, SimTime now, bool hit);

  const std::vector<Query>& queries() const { return queries_; }
  const std::vector<Span>& spans() const { return spans_; }
  /// Queries that exceeded the storage cap (histograms still saw them).
  uint64_t overflow_queries() const { return overflow_queries_; }

  /// Per-phase latency distribution across every span (stored or not).
  const Histogram& phase_latency(QueryPhase phase) const;
  /// Chord hop-count distribution of kDRingResolve spans.
  const Histogram& dring_hops() const { return dring_hops_; }

  /// Spans of one query, in recording (= completion) order.
  std::vector<Span> SpansOf(uint64_t query) const;

  /// Chrome trace-event JSON ({"traceEvents": [...], ...}); timestamps are
  /// microseconds of simulated time. Deterministic: events appear in
  /// recording order.
  void WriteChromeTrace(std::ostream& os) const;
  Status WriteChromeTraceFile(const std::string& path) const;

 private:
  size_t max_queries_;
  uint64_t next_id_ = 1;
  uint64_t overflow_queries_ = 0;
  uint64_t dist_prefix_ = 0;
  int export_pid_ = 1;
  std::string export_process_name_ = "flowercdn-sim";
  std::vector<Query> queries_;  // queries_[i].id == i + 1
  std::vector<Span> spans_;
  std::vector<RemoteSpan> remote_spans_;
  std::vector<Histogram> phase_latency_;
  Histogram dring_hops_;
};

}  // namespace flowercdn

#endif  // FLOWERCDN_OBS_TRACE_H_
