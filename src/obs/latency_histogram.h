#ifndef FLOWERCDN_OBS_LATENCY_HISTOGRAM_H_
#define FLOWERCDN_OBS_LATENCY_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>

namespace flowercdn {

/// HdrHistogram-style log-linear latency recorder: 32 linear sub-buckets
/// per power-of-two decade of microseconds. Constant memory, ~3% relative
/// quantile error, no per-sample allocation — fit for tens of thousands of
/// recordings per second (load generator, gateway request path, event-loop
/// poll instrumentation).
///
/// Copyable on purpose: interval reporting snapshots the histogram and
/// diffs it against the previous snapshot (DeltaSince) to get per-interval
/// quantiles out of a cumulative recorder.
class LatencyHistogram {
 public:
  static constexpr int kDecades = 28;     // up to ~2^27 us =~ 134 s
  static constexpr int kSubBuckets = 32;

  void Record(uint64_t micros);
  void Merge(const LatencyHistogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t max_micros() const { return max_; }
  uint64_t sum_micros() const { return sum_; }
  double mean_micros() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) /
                                   static_cast<double>(count_);
  }
  /// Quantile in microseconds (q in [0,1]); 0 when empty.
  uint64_t QuantileMicros(double q) const;

  /// The samples recorded since `prev` was snapshotted from this histogram:
  /// bucket-wise difference, valid only when `prev` is an earlier copy of
  /// *this. The delta's max is capped at the cumulative max (the true
  /// interval max is not reconstructible from two snapshots).
  LatencyHistogram DeltaSince(const LatencyHistogram& prev) const;

 private:
  static size_t BucketOf(uint64_t micros);
  static uint64_t BucketUpperBound(size_t bucket);

  uint64_t buckets_[kDecades * kSubBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

}  // namespace flowercdn

#endif  // FLOWERCDN_OBS_LATENCY_HISTOGRAM_H_
