#ifndef FLOWERCDN_OBS_STATS_H_
#define FLOWERCDN_OBS_STATS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.h"

namespace flowercdn {

class StatsRegistry;

/// Monotonic named counter with a per-time-bucket series: every Add() lands
/// in the bucket of the registry clock's current time, so the series reads
/// as "events per simulated hour" (or whatever bucket the registry uses).
class StatsCounter {
 public:
  void Add(uint64_t n = 1);

  const std::string& name() const { return name_; }
  uint64_t total() const { return total_; }
  /// Bucket b covers simulated time [b*bucket, (b+1)*bucket). Trailing
  /// buckets that saw no events are absent (the vector only grows up to the
  /// last bucket with activity).
  const std::vector<uint64_t>& series() const { return series_; }

 private:
  friend class StatsRegistry;
  StatsCounter(std::string name, const StatsRegistry* registry)
      : name_(std::move(name)), registry_(registry) {}

  std::string name_;
  const StatsRegistry* registry_;
  uint64_t total_ = 0;
  std::vector<uint64_t> series_;
};

/// Named gauge: a level (not a rate). Remembers the last value set overall
/// and per time bucket, so sampled state (alive peers, ring size) exports
/// as an hourly series.
class StatsGauge {
 public:
  void Set(double value);

  const std::string& name() const { return name_; }
  double value() const { return value_; }
  const std::vector<double>& series() const { return series_; }

 private:
  friend class StatsRegistry;
  StatsGauge(std::string name, const StatsRegistry* registry)
      : name_(std::move(name)), registry_(registry) {}

  std::string name_;
  const StatsRegistry* registry_;
  double value_ = 0;
  std::vector<double> series_;
};

/// Registry of named counters and gauges, each with a per-time-bucket
/// series driven by an injected clock (the Simulator's virtual time in
/// experiments, a fake in tests). Registration is idempotent: looking up a
/// name creates the instrument on first use, so call sites never need
/// set-up order. Deterministic by construction — state depends only on the
/// (deterministic) sequence of Add/Set calls, and snapshots iterate in name
/// order.
class StatsRegistry {
 public:
  using ClockFn = std::function<SimTime()>;

  explicit StatsRegistry(ClockFn clock, SimDuration bucket = kHour);
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  /// The counter/gauge named `name`, created on first use. Pointers stay
  /// valid for the registry's lifetime (hot call sites may cache them).
  StatsCounter* counter(std::string_view name);
  StatsGauge* gauge(std::string_view name);

  /// Convenience one-shot forms.
  void Add(std::string_view name, uint64_t n = 1) { counter(name)->Add(n); }
  void Set(std::string_view name, double value) { gauge(name)->Set(value); }

  SimDuration bucket() const { return bucket_; }
  SimTime now() const { return clock_(); }
  /// Index of the bucket the current time falls into.
  size_t CurrentBucket() const;

  /// Point-in-time copy of one instrument, for export.
  struct CounterSnapshot {
    std::string name;
    uint64_t total = 0;
    std::vector<uint64_t> series;
  };
  struct GaugeSnapshot {
    std::string name;
    double value = 0;
    std::vector<double> series;
  };

  /// All instruments, sorted by name (byte-stable export order).
  std::vector<CounterSnapshot> SnapshotCounters() const;
  std::vector<GaugeSnapshot> SnapshotGauges() const;

 private:
  ClockFn clock_;
  SimDuration bucket_;
  // Ordered maps: snapshot order == name order with no extra sort.
  std::map<std::string, std::unique_ptr<StatsCounter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<StatsGauge>, std::less<>> gauges_;
};

}  // namespace flowercdn

#endif  // FLOWERCDN_OBS_STATS_H_
