#ifndef FLOWERCDN_OBS_SAMPLER_H_
#define FLOWERCDN_OBS_SAMPLER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/types.h"

namespace flowercdn {

/// min/mean/max/p95 of a population of non-negative integer sizes (loads,
/// petal sizes). p95 is the nearest-rank quantile of the sorted values —
/// exact and deterministic, no interpolation.
struct DistSummary {
  size_t count = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double mean = 0;
  uint64_t p95 = 0;

  static DistSummary FromValues(std::vector<uint64_t> values);
};

/// One periodic snapshot of overlay state: who is alive in which role, how
/// load spreads across directory instances, and how big petals are. The
/// probe (FlowerSystem) fills it; Squirrel runs simply have none.
struct OverlaySample {
  SimTime time = 0;
  size_t alive_peers = 0;
  size_t clients = 0;
  size_t content_peers = 0;
  size_t directory_peers = 0;  // D-ring population
  int max_instance = 0;
  DistSummary directory_load;  // content peers registered per instance
  DistSummary petal_size;      // content peers per (website, locality)
};

/// Invokes a probe every `interval` of simulated time (first at
/// t = interval) and keeps the returned samples. The probe must be
/// deterministic for the run to stay bit-reproducible.
class OverlaySampler {
 public:
  using Probe = std::function<OverlaySample()>;

  OverlaySampler(Simulator* sim, SimDuration interval);
  OverlaySampler(const OverlaySampler&) = delete;
  OverlaySampler& operator=(const OverlaySampler&) = delete;

  void Start(Probe probe);

  const std::vector<OverlaySample>& samples() const { return samples_; }
  SimDuration interval() const { return interval_; }

 private:
  void Tick();

  Simulator* sim_;
  SimDuration interval_;
  Probe probe_;
  std::vector<OverlaySample> samples_;
};

/// Snapshots the network's cumulative per-family traffic counters every
/// `interval`; consumers diff consecutive points to get bytes/messages per
/// hour per protocol family — the paper's overhead-over-time view without
/// any accounting on the Send() hot path beyond what Network already does.
class TrafficSampler {
 public:
  struct Point {
    SimTime time = 0;
    uint64_t messages_sent = 0;
    uint64_t messages_dropped = 0;
    uint64_t bytes_sent = 0;
    Network::TrafficBreakdown traffic;
  };

  TrafficSampler(Simulator* sim, const Network* network,
                 SimDuration interval);
  TrafficSampler(const TrafficSampler&) = delete;
  TrafficSampler& operator=(const TrafficSampler&) = delete;

  void Start();

  const std::vector<Point>& points() const { return points_; }
  SimDuration interval() const { return interval_; }

 private:
  void Tick();

  Simulator* sim_;
  const Network* network_;
  SimDuration interval_;
  std::vector<Point> points_;
};

}  // namespace flowercdn

#endif  // FLOWERCDN_OBS_SAMPLER_H_
