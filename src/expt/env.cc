#include "expt/env.h"

#include "util/logging.h"
#include "wire/codec.h"

namespace flowercdn {

namespace {

ChurnProcess::Params MakeChurnParams(const ExperimentConfig& config) {
  ChurnProcess::Params params;
  params.mean_uptime = config.mean_uptime;
  params.arrival_rate_per_ms = config.ArrivalRatePerMs();
  params.enabled = config.churn_enabled;
  return params;
}

}  // namespace

ExperimentEnv::ExperimentEnv(const ExperimentConfig& config)
    : config_(config),
      root_rng_(config.seed),
      sim_(config.kernel),
      topology_(config.topology),
      network_(&sim_, &topology_),
      catalog_(config.catalog),
      workload_(&catalog_, config.workload),
      origins_(&topology_, config.catalog.num_websites, config.origin,
               root_rng_.Fork("origins")),
      metrics_(config.metrics),
      churn_(&sim_, root_rng_.Fork("churn"), MakeChurnParams(config)),
      stats_([this] { return sim_.now(); }, config.stats_interval) {
  if (config_.collect_traces) {
    trace_ = std::make_shared<TraceCollector>(config_.trace_max_queries);
  }
  if (config_.wire_mode == WireMode::kEncoded) {
    network_.SetMessageSizer(&WireEncodedSize);
  }
  const size_t universe = config_.UniverseSize();
  const int k = config_.topology.num_localities;
  const int num_websites = config_.catalog.num_websites;
  Rng placement = root_rng_.Fork("placement");
  Rng assignment = root_rng_.Fork("assignment");

  identities_.reserve(universe);
  for (size_t i = 0; i < universe; ++i) {
    Identity identity;
    identity.id = static_cast<PeerId>(i + 1);
    if (i < static_cast<size_t>(num_websites) * k) {
      // One identity per (website, locality): the initial D-ring seeds.
      identity.website = static_cast<WebsiteId>(i / k);
      identity.locality = static_cast<LocalityId>(i % k);
    } else {
      identity.website =
          static_cast<WebsiteId>(assignment.NextBounded(num_websites));
      identity.locality =
          static_cast<LocalityId>(assignment.NextBounded(k));
    }
    Coord coord = topology_.PlaceInLocality(identity.locality, placement);
    network_.RegisterIdentity(identity.id, coord);
    identities_.push_back(std::move(identity));
  }
}

ExperimentEnv::Identity& ExperimentEnv::identity(PeerId id) {
  FLOWERCDN_CHECK(id != kInvalidPeer && id <= identities_.size());
  return identities_[id - 1];
}

const ExperimentEnv::Identity& ExperimentEnv::identity(PeerId id) const {
  FLOWERCDN_CHECK(id != kInvalidPeer && id <= identities_.size());
  return identities_[id - 1];
}

PeerId ExperimentEnv::InitialDirectoryIdentity(WebsiteId ws,
                                               LocalityId loc) const {
  const int k = config_.topology.num_localities;
  FLOWERCDN_CHECK(static_cast<int>(ws) < config_.catalog.num_websites);
  FLOWERCDN_CHECK(loc >= 0 && loc < k);
  return static_cast<PeerId>(static_cast<size_t>(ws) * k + loc + 1);
}

Rng ExperimentEnv::MakePeerRng(PeerId id) const {
  return root_rng_.Fork("peer-" + std::to_string(id));
}

}  // namespace flowercdn
