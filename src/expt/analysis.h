#ifndef FLOWERCDN_EXPT_ANALYSIS_H_
#define FLOWERCDN_EXPT_ANALYSIS_H_

#include <cstddef>

#include "expt/config.h"
#include "util/random.h"

namespace flowercdn {

/// Closed-form companions to the simulation — the paper's §7 mentions
/// "deepening the analytical and empirical analysis of our protocols";
/// these estimators capture the first-order behaviour and are checked
/// against simulation results in tests/analysis_test.cc.
namespace analysis {

/// Steady-state population of the churn model: arrivals at rate λ with
/// exponential mean-m uptimes converge to λ*m (Little's law).
double SteadyStatePopulation(double arrival_rate_per_ms,
                             SimDuration mean_uptime);

/// Expected number of *live* content peers in one petal(ws, loc): the
/// population share of one (website, locality) pair.
double ExpectedPetalSize(const ExperimentConfig& config);

/// Expected Chord routing hops in an n-node ring: (log2 n) / 2.
double ExpectedChordHops(size_t ring_size);

/// Expected one-way routed latency of a DHT lookup: hops * mean one-way
/// link latency, plus one answer leg.
double ExpectedLookupLatencyMs(size_t ring_size, double mean_link_ms);

/// Expected fraction of a peer's session spent with a *stale* directory
/// pointer: the directory fails at rate 1/m and is re-detected after (on
/// average) half the detection interval d -> stale fraction ≈ (d/2) / m,
/// capped at 1. First-order model of §5.1's keepalive maintenance.
double ExpectedStaleDirectoryFraction(SimDuration detection_interval,
                                      SimDuration mean_uptime);

/// Hit-ratio ceiling of a petal whose n live members each cache s objects
/// drawn from the website's Zipf popularity law: a query (itself
/// Zipf-distributed over objects the querier does not hold) hits if at
/// least one member holds the object:
///
///   hit = sum_o pmf(o) * (1 - (1 - q_o)^n),  q_o ≈ min(1, s * pmf(o))
///
/// This ignores directory staleness and churn transients, so it bounds
/// the simulated hit ratio from above.
double PetalHitRatioCeiling(const ZipfDistribution& zipf, double live_peers,
                            double objects_per_peer);

/// Expected per-peer maintenance message rate (messages per second) of
/// Flower-CDN's petal layer: one gossip exchange (2 msgs) + one keepalive
/// round trip (2 msgs) per gossip period, amortized, ignoring pushes.
double FlowerPetalMaintenanceRate(SimDuration gossip_period);

/// Expected per-peer maintenance message rate of a Chord ring member:
/// stabilization (2 msgs), notify (2), amortized predecessor checks and
/// finger fixes per stabilize period.
double ChordMaintenanceRate(const ChordNode::Params& params,
                            size_t ring_size);

}  // namespace analysis
}  // namespace flowercdn

#endif  // FLOWERCDN_EXPT_ANALYSIS_H_
