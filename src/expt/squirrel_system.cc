#include "expt/squirrel_system.h"

#include <utility>

#include "util/logging.h"

namespace flowercdn {

SquirrelSystem::SquirrelSystem(ExperimentEnv* env,
                               const SquirrelPeer::Params& params)
    : env_(env), params_(params), rng_(env->MakeRng("squirrel-system")) {
  FLOWERCDN_CHECK(env != nullptr);
  ctx_.network = &env_->network();
  ctx_.metrics = &env_->metrics();
  ctx_.catalog = &env_->catalog();
  ctx_.workload = &env_->workload();
  ctx_.origins = &env_->origins();
  ctx_.pick_bootstrap = [this](PeerId self) { return PickBootstrap(self); };
}

void SquirrelSystem::Setup() {
  ChurnProcess& churn = env_->churn();
  churn.SetHandlers([this](PeerId peer) { OnArrival(peer); },
                    [this](PeerId peer) { OnFailure(peer); });

  // The same k*|W| identities that seed Flower-CDN's D-ring start online
  // here too (as plain ring members), keeping both systems' initial
  // populations identical.
  const size_t initial = static_cast<size_t>(
                             env_->config().catalog.num_websites) *
                         env_->config().topology.num_localities;
  for (size_t i = 0; i < initial && i < env_->universe_size(); ++i) {
    PeerId peer = static_cast<PeerId>(i + 1);
    SimDuration at = static_cast<SimDuration>(i) *
                     env_->config().initial_join_stagger;
    bool create_ring = i == 0;
    env_->sim().Schedule(at, [this, peer, create_ring]() {
      env_->churn().StartSession(peer);
      StartSessionFor(peer, create_ring);
    });
  }
  for (size_t i = initial; i < env_->universe_size(); ++i) {
    env_->churn().AddOfflineIdentity(static_cast<PeerId>(i + 1));
  }
  churn.Start();
}

void SquirrelSystem::StartSessionFor(PeerId peer, bool create_ring) {
  const ExperimentEnv::Identity& identity = env_->identity(peer);
  auto session = std::make_unique<SquirrelPeer>(
      ctx_, peer, identity.website, &env_->identity(peer).store,
      env_->MakePeerRng(peer), params_);
  SquirrelPeer* raw = session.get();
  sessions_.emplace(peer, std::move(session));
  if (create_ring) {
    raw->Start(std::nullopt);
  } else {
    PeerId bootstrap = PickBootstrap(peer);
    raw->Start(bootstrap == kInvalidPeer ? std::nullopt
                                         : std::optional<PeerId>(bootstrap));
  }
  TrackAlive(peer);
}

void SquirrelSystem::OnArrival(PeerId peer) {
  if (!env_->config().retain_cache_on_rejoin) {
    env_->identity(peer).store = ContentStore();
  }
  StartSessionFor(peer, /*create_ring=*/alive_.empty());
}

void SquirrelSystem::OnFailure(PeerId peer) { DestroySession(peer); }

void SquirrelSystem::DestroySession(PeerId peer) {
  auto it = sessions_.find(peer);
  if (it == sessions_.end()) return;
  dead_queries_issued_ += it->second->queries_issued();
  dead_home_redirects_ += it->second->home_redirects();
  dead_home_empty_ += it->second->home_empty();
  dead_delegate_failures_ += it->second->delegate_failures();
  dead_lookup_failures_ += it->second->lookup_failures();
  UntrackAlive(peer);
  if (env_->network().IsAlive(peer)) env_->network().Detach(peer);
  sessions_.erase(it);
}

PeerId SquirrelSystem::PickBootstrap(PeerId self) {
  for (int attempt = 0; attempt < 5 && !alive_.empty(); ++attempt) {
    PeerId candidate = alive_[rng_.Index(alive_.size())];
    if (candidate != self && env_->network().IsAlive(candidate)) {
      // Prefer bootstraps that actually made it into the ring.
      auto it = sessions_.find(candidate);
      if (it != sessions_.end() && it->second->joined()) return candidate;
    }
  }
  return kInvalidPeer;
}

void SquirrelSystem::TrackAlive(PeerId peer) {
  if (alive_index_.count(peer) > 0) return;
  alive_index_[peer] = alive_.size();
  alive_.push_back(peer);
}

void SquirrelSystem::UntrackAlive(PeerId peer) {
  auto it = alive_index_.find(peer);
  if (it == alive_index_.end()) return;
  size_t idx = it->second;
  PeerId moved = alive_.back();
  alive_[idx] = moved;
  alive_index_[moved] = idx;
  alive_.pop_back();
  alive_index_.erase(peer);
}

SquirrelSystem::Stats SquirrelSystem::ComputeStats() const {
  Stats stats;
  stats.queries_issued = dead_queries_issued_;
  stats.home_redirects = dead_home_redirects_;
  stats.home_empty = dead_home_empty_;
  stats.delegate_failures = dead_delegate_failures_;
  stats.lookup_failures = dead_lookup_failures_;
  stats.live_sessions = sessions_.size();
  for (const auto& [peer, session] : sessions_) {
    stats.queries_issued += session->queries_issued();
    stats.home_redirects += session->home_redirects();
    stats.home_empty += session->home_empty();
    stats.delegate_failures += session->delegate_failures();
    stats.lookup_failures += session->lookup_failures();
    if (session->joined()) ++stats.joined_sessions;
  }
  return stats;
}

SquirrelPeer* SquirrelSystem::session(PeerId peer) {
  auto it = sessions_.find(peer);
  return it == sessions_.end() ? nullptr : it->second.get();
}

void SquirrelSystem::InjectFailure(PeerId peer) { DestroySession(peer); }

}  // namespace flowercdn
