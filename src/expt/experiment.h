#ifndef FLOWERCDN_EXPT_EXPERIMENT_H_
#define FLOWERCDN_EXPT_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "chaos/probe.h"
#include "expt/config.h"
#include "expt/flower_system.h"
#include "expt/squirrel_system.h"
#include "metrics/metrics.h"
#include "obs/sampler.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "util/histogram.h"

namespace flowercdn {

/// Which CDN protocol an experiment runs.
enum class SystemKind { kFlowerCdn, kSquirrel };

const char* SystemKindName(SystemKind kind);

/// Everything a benchmark harness needs to print the paper's tables and
/// figures for one (system, configuration) run.
struct ExperimentResult {
  SystemKind system = SystemKind::kFlowerCdn;
  size_t target_population = 0;

  // Headline metrics (Table 2 row).
  double hit_ratio = 0;
  double mean_lookup_ms = 0;
  double mean_transfer_hits_ms = 0;
  double mean_transfer_all_ms = 0;
  uint64_t total_queries = 0;
  uint64_t hits = 0;
  uint64_t new_client_queries = 0;
  uint64_t new_client_hits = 0;
  double mean_new_client_lookup_ms = 0;
  double mean_established_lookup_ms = 0;

  // Distributions (Figs. 4, 5).
  Histogram lookup_all{50.0, 60};
  Histogram lookup_hits{50.0, 60};
  Histogram transfer_all{20.0, 30};
  Histogram transfer_hits{20.0, 30};

  // Hit ratio over time (Fig. 3).
  std::vector<MetricsCollector::TimePoint> time_series;
  std::vector<double> cumulative_hit_ratio;

  // Environment accounting.
  uint64_t messages_sent = 0;
  uint64_t messages_dropped = 0;
  uint64_t bytes_sent = 0;
  Network::TrafficBreakdown traffic;
  uint64_t churn_arrivals = 0;
  uint64_t churn_failures = 0;
  size_t final_population = 0;
  uint64_t events_processed = 0;
  uint64_t events_cancelled = 0;

  // --- Kernel timing (nondeterministic; never in default JSON) --------------
  /// Scheduler backend the trial ran on.
  KernelKind kernel = KernelKind::kLadder;
  /// Wall-clock seconds from environment construction to the last event.
  /// Varies run to run, so json_export only emits it behind --json-timing;
  /// the deterministic outputs (counters, metrics) never depend on it.
  double wall_seconds = 0;
  double EventsPerWallSecond() const {
    return wall_seconds > 0 ? static_cast<double>(events_processed) /
                                  wall_seconds
                            : 0;
  }

  // Flower-specific protocol stats (zeroed for Squirrel runs).
  FlowerSystem::Stats flower_stats;
  std::vector<FlowerSystem::LoadSample> load_samples;

  // Squirrel-specific protocol stats (zeroed for Flower runs).
  SquirrelSystem::Stats squirrel_stats;

  // --- Observability (src/obs) ----------------------------------------------
  /// Width of the per-time buckets below (config.stats_interval).
  SimDuration stats_interval = kHour;
  /// Cumulative traffic snapshots taken every stats_interval; diff
  /// consecutive points for per-interval bytes/messages per family.
  std::vector<TrafficSampler::Point> traffic_series;
  /// Named protocol counters with per-interval series, sorted by name.
  std::vector<StatsRegistry::CounterSnapshot> stat_counters;
  /// Hourly overlay snapshots (empty for Squirrel runs).
  std::vector<OverlaySample> overlay_samples;
  /// Query-lifecycle traces; null unless config.collect_traces.
  std::shared_ptr<TraceCollector> trace;

  /// Chaos recovery metrics; `chaos.enabled` is false unless the config
  /// carried a non-empty scenario.
  ChaosReport chaos;
};

/// Runs one full simulated deployment of `kind` under `config`.
/// `progress`, when set, is invoked after every simulated hour.
ExperimentResult RunExperiment(
    const ExperimentConfig& config, SystemKind kind,
    const std::function<void(SimTime now, SimTime total)>& progress = {});

}  // namespace flowercdn

#endif  // FLOWERCDN_EXPT_EXPERIMENT_H_
