#include "expt/experiment.h"

#include <memory>

#include "expt/env.h"

namespace flowercdn {

const char* SystemKindName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kFlowerCdn:
      return "Flower-CDN";
    case SystemKind::kSquirrel:
      return "Squirrel";
  }
  return "?";
}

ExperimentResult RunExperiment(
    const ExperimentConfig& config, SystemKind kind,
    const std::function<void(SimTime now, SimTime total)>& progress) {
  ExperimentEnv env(config);
  TrafficSampler traffic_sampler(&env.sim(), &env.network(),
                                 config.stats_interval);
  traffic_sampler.Start();
  std::unique_ptr<FlowerSystem> flower;
  std::unique_ptr<SquirrelSystem> squirrel;
  if (kind == SystemKind::kFlowerCdn) {
    flower = std::make_unique<FlowerSystem>(&env, config.flower);
    flower->Setup();
  } else {
    squirrel = std::make_unique<SquirrelSystem>(&env, config.squirrel);
    squirrel->Setup();
  }

  for (SimTime t = kHour; t <= config.duration; t += kHour) {
    env.sim().RunUntil(t);
    if (progress) progress(t, config.duration);
  }
  env.sim().RunUntil(config.duration);

  ExperimentResult result;
  result.system = kind;
  result.target_population = config.target_population;

  const MetricsCollector& metrics = env.metrics();
  result.hit_ratio = metrics.HitRatio();
  result.mean_lookup_ms = metrics.MeanLookupMs();
  result.mean_transfer_hits_ms = metrics.MeanTransferHitsMs();
  result.mean_transfer_all_ms = metrics.MeanTransferMs();
  result.total_queries = metrics.total_queries();
  result.hits = metrics.hits();
  result.new_client_queries = metrics.new_client_queries();
  result.new_client_hits = metrics.new_client_hits();
  result.mean_new_client_lookup_ms = metrics.MeanNewClientLookupMs();
  result.mean_established_lookup_ms = metrics.MeanEstablishedLookupMs();
  result.lookup_all = metrics.lookup_all();
  result.lookup_hits = metrics.lookup_hits();
  result.transfer_all = metrics.transfer_all();
  result.transfer_hits = metrics.transfer_hits();
  result.time_series = metrics.TimeSeries();
  result.cumulative_hit_ratio = metrics.CumulativeHitRatioSeries();

  result.messages_sent = env.network().messages_sent();
  result.messages_dropped = env.network().messages_dropped();
  result.bytes_sent = env.network().bytes_sent();
  result.traffic = env.network().traffic();
  result.churn_arrivals = env.churn().total_arrivals();
  result.churn_failures = env.churn().total_failures();
  result.final_population = env.network().alive_count();
  result.events_processed = env.sim().events_processed();

  if (flower != nullptr) {
    result.flower_stats = flower->ComputeStats();
    result.load_samples = flower->load_samples();
    result.overlay_samples = flower->overlay_samples();
  }
  if (squirrel != nullptr) {
    result.squirrel_stats = squirrel->ComputeStats();
  }

  result.stats_interval = config.stats_interval;
  result.traffic_series = traffic_sampler.points();
  result.stat_counters = env.stats().SnapshotCounters();
  result.trace = env.trace();
  return result;
}

}  // namespace flowercdn
