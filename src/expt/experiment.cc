#include "expt/experiment.h"

#include <chrono>
#include <memory>

#include "chaos/engine.h"
#include "expt/env.h"

namespace flowercdn {

const char* SystemKindName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kFlowerCdn:
      return "Flower-CDN";
    case SystemKind::kSquirrel:
      return "Squirrel";
  }
  return "?";
}

ExperimentResult RunExperiment(
    const ExperimentConfig& config, SystemKind kind,
    const std::function<void(SimTime now, SimTime total)>& progress) {
  const auto wall_start = std::chrono::steady_clock::now();
  ExperimentEnv env(config);
  TrafficSampler traffic_sampler(&env.sim(), &env.network(),
                                 config.stats_interval);
  traffic_sampler.Start();
  std::unique_ptr<FlowerSystem> flower;
  std::unique_ptr<SquirrelSystem> squirrel;
  if (kind == SystemKind::kFlowerCdn) {
    flower = std::make_unique<FlowerSystem>(&env, config.flower);
    flower->Setup();
  } else {
    squirrel = std::make_unique<SquirrelSystem>(&env, config.squirrel);
    squirrel->Setup();
  }

  std::unique_ptr<ChaosEngine> chaos;
  if (!config.chaos.empty()) {
    ChaosHooks hooks;
    if (flower != nullptr) {
      FlowerSystem* fs = flower.get();
      hooks.kill_directory = [fs](WebsiteId ws, int loc) {
        return fs->KillDirectory(ws, loc);
      };
      hooks.directory_alive = [fs](WebsiteId ws, int loc) {
        return fs->HasDirectory(ws, loc);
      };
    }
    // Squirrel has no directory peers; kill_directory actions degrade to
    // counted no-ops, keeping cross-system scenarios comparable.
    ExperimentEnv* env_ptr = &env;
    hooks.set_query_rate = [env_ptr](WebsiteId ws, double multiplier) {
      env_ptr->mutable_workload().SetRateMultiplier(ws, multiplier);
    };
    hooks.query_totals = [env_ptr](uint64_t& queries, uint64_t& hits) {
      queries = env_ptr->metrics().total_queries();
      hits = env_ptr->metrics().hits();
    };
    ChaosEngine::Params chaos_params;
    if (kind == SystemKind::kFlowerCdn && config.flower.replication >= 2) {
      // Replicated directories fail over in seconds; the default one-minute
      // replacement poll would quantize that away. Kept at the default for
      // k=1 so unreplicated runs stay event-for-event identical.
      chaos_params.replacement_poll_period = 5 * kSecond;
    }
    chaos = std::make_unique<ChaosEngine>(
        &env.sim(), &env.network(), &env.churn(), &env.stats(),
        env.MakeRng("chaos"), config.chaos, std::move(hooks), chaos_params);
    chaos->Start();
  }

  for (SimTime t = kHour; t <= config.duration; t += kHour) {
    env.sim().RunUntil(t);
    if (progress) progress(t, config.duration);
  }
  env.sim().RunUntil(config.duration);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // Kernel counters into the registry so they ride the exported counters
  // array. Both are deterministic (identical across kernels and --jobs);
  // the wall-clock rate deliberately stays out of the registry and lives
  // in the (non-exported-by-default) timing fields below.
  env.stats().counter("sim.events_executed")
      ->Add(env.sim().events_processed());
  env.stats().counter("sim.events_cancelled")
      ->Add(env.sim().events_cancelled());

  ExperimentResult result;
  result.system = kind;
  result.target_population = config.target_population;
  result.kernel = config.kernel;
  result.wall_seconds = wall_seconds;

  const MetricsCollector& metrics = env.metrics();
  result.hit_ratio = metrics.HitRatio();
  result.mean_lookup_ms = metrics.MeanLookupMs();
  result.mean_transfer_hits_ms = metrics.MeanTransferHitsMs();
  result.mean_transfer_all_ms = metrics.MeanTransferMs();
  result.total_queries = metrics.total_queries();
  result.hits = metrics.hits();
  result.new_client_queries = metrics.new_client_queries();
  result.new_client_hits = metrics.new_client_hits();
  result.mean_new_client_lookup_ms = metrics.MeanNewClientLookupMs();
  result.mean_established_lookup_ms = metrics.MeanEstablishedLookupMs();
  result.lookup_all = metrics.lookup_all();
  result.lookup_hits = metrics.lookup_hits();
  result.transfer_all = metrics.transfer_all();
  result.transfer_hits = metrics.transfer_hits();
  result.time_series = metrics.TimeSeries();
  result.cumulative_hit_ratio = metrics.CumulativeHitRatioSeries();

  result.messages_sent = env.network().messages_sent();
  result.messages_dropped = env.network().messages_dropped();
  result.bytes_sent = env.network().bytes_sent();
  result.traffic = env.network().traffic();
  result.churn_arrivals = env.churn().total_arrivals();
  result.churn_failures = env.churn().total_failures();
  result.final_population = env.network().alive_count();
  result.events_processed = env.sim().events_processed();
  result.events_cancelled = env.sim().events_cancelled();

  if (flower != nullptr) {
    result.flower_stats = flower->ComputeStats();
    result.load_samples = flower->load_samples();
    result.overlay_samples = flower->overlay_samples();
  }
  if (squirrel != nullptr) {
    result.squirrel_stats = squirrel->ComputeStats();
  }
  if (chaos != nullptr) {
    result.chaos = chaos->Finish();
  }

  result.stats_interval = config.stats_interval;
  result.traffic_series = traffic_sampler.points();
  result.stat_counters = env.stats().SnapshotCounters();
  result.trace = env.trace();
  return result;
}

}  // namespace flowercdn
