#include "expt/analysis.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace flowercdn {
namespace analysis {

double SteadyStatePopulation(double arrival_rate_per_ms,
                             SimDuration mean_uptime) {
  FLOWERCDN_CHECK(mean_uptime > 0);
  return arrival_rate_per_ms * static_cast<double>(mean_uptime);
}

double ExpectedPetalSize(const ExperimentConfig& config) {
  double pairs = static_cast<double>(config.catalog.num_websites) *
                 config.topology.num_localities;
  FLOWERCDN_CHECK(pairs > 0);
  return static_cast<double>(config.target_population) / pairs;
}

double ExpectedChordHops(size_t ring_size) {
  if (ring_size <= 1) return 0.0;
  return 0.5 * std::log2(static_cast<double>(ring_size));
}

double ExpectedLookupLatencyMs(size_t ring_size, double mean_link_ms) {
  // Forwarding legs plus the direct answer to the origin.
  return (ExpectedChordHops(ring_size) + 1.0) * mean_link_ms;
}

double ExpectedStaleDirectoryFraction(SimDuration detection_interval,
                                      SimDuration mean_uptime) {
  FLOWERCDN_CHECK(mean_uptime > 0);
  double stale = 0.5 * static_cast<double>(detection_interval) /
                 static_cast<double>(mean_uptime);
  return std::clamp(stale, 0.0, 1.0);
}

double PetalHitRatioCeiling(const ZipfDistribution& zipf, double live_peers,
                            double objects_per_peer) {
  if (live_peers <= 0 || objects_per_peer <= 0) return 0.0;
  double hit = 0.0;
  for (size_t o = 0; o < zipf.n(); ++o) {
    double p = zipf.Pmf(o);
    double held_by_one = std::min(1.0, objects_per_peer * p);
    double held_by_any = 1.0 - std::pow(1.0 - held_by_one, live_peers);
    hit += p * held_by_any;
  }
  return std::min(hit, 1.0);
}

double FlowerPetalMaintenanceRate(SimDuration gossip_period) {
  FLOWERCDN_CHECK(gossip_period > 0);
  // Gossip request+reply, keepalive request+reply per period.
  return 4.0 / (static_cast<double>(gossip_period) / kSecond);
}

double ChordMaintenanceRate(const ChordNode::Params& params,
                            size_t ring_size) {
  FLOWERCDN_CHECK(params.stabilize_period > 0);
  double per_round = 4.0;  // neighbors probe + notify (each req+resp)
  if (params.predecessor_check_stride > 0) {
    per_round += 2.0 / params.predecessor_check_stride;
  }
  if (params.finger_fix_stride > 0) {
    // One finger-fix lookup per stride rounds; a lookup costs about
    // hops forwards + hops acks + 1 result.
    per_round += (2.0 * ExpectedChordHops(ring_size) + 1.0) /
                 params.finger_fix_stride;
  }
  return per_round / (static_cast<double>(params.stabilize_period) / kSecond);
}

}  // namespace analysis
}  // namespace flowercdn
