#ifndef FLOWERCDN_EXPT_SQUIRREL_SYSTEM_H_
#define FLOWERCDN_EXPT_SQUIRREL_SYSTEM_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "expt/env.h"
#include "squirrel/squirrel_peer.h"

namespace flowercdn {

/// Drives the Squirrel baseline inside an ExperimentEnv: the same identity
/// universe, workload and churn as a Flower-CDN run, but every peer is an
/// ordinary member of one global Chord ring (no localities, no petals, no
/// directory replication).
class SquirrelSystem {
 public:
  SquirrelSystem(ExperimentEnv* env, const SquirrelPeer::Params& params);

  /// Creates the initial population and starts churn.
  void Setup();

  SquirrelPeer* session(PeerId peer);
  size_t live_sessions() const { return sessions_.size(); }

  struct Stats {
    uint64_t queries_issued = 0;
    uint64_t home_redirects = 0;
    uint64_t home_empty = 0;
    uint64_t delegate_failures = 0;
    uint64_t lookup_failures = 0;
    size_t live_sessions = 0;
    size_t joined_sessions = 0;
  };
  Stats ComputeStats() const;

  /// Failure injection (tests).
  void InjectFailure(PeerId peer);

 private:
  void StartSessionFor(PeerId peer, bool create_ring);
  void OnArrival(PeerId peer);
  void OnFailure(PeerId peer);
  void DestroySession(PeerId peer);
  PeerId PickBootstrap(PeerId self);
  void TrackAlive(PeerId peer);
  void UntrackAlive(PeerId peer);

  ExperimentEnv* env_;
  SquirrelPeer::Params params_;
  SquirrelContext ctx_;
  Rng rng_;

  std::unordered_map<PeerId, std::unique_ptr<SquirrelPeer>> sessions_;
  std::vector<PeerId> alive_;
  std::unordered_map<PeerId, size_t> alive_index_;
  uint64_t dead_queries_issued_ = 0;
  uint64_t dead_home_redirects_ = 0;
  uint64_t dead_home_empty_ = 0;
  uint64_t dead_delegate_failures_ = 0;
  uint64_t dead_lookup_failures_ = 0;
};

}  // namespace flowercdn

#endif  // FLOWERCDN_EXPT_SQUIRREL_SYSTEM_H_
