#ifndef FLOWERCDN_EXPT_ENV_H_
#define FLOWERCDN_EXPT_ENV_H_

#include <memory>
#include <vector>

#include "expt/config.h"
#include "metrics/metrics.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "sim/churn.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/topology.h"
#include "storage/content_store.h"
#include "storage/origin.h"
#include "storage/website.h"
#include "storage/workload.h"
#include "util/random.h"

namespace flowercdn {

/// Everything both CDN systems share in one experiment: the event kernel,
/// the latency topology, the network, content/workload models, the churn
/// process, the metrics sink and the identity universe.
///
/// Identities are fixed for the whole experiment (paper §6.1): each has a
/// website of interest, a locality, a coordinate near its landmark, and a
/// persistent browser cache. The first k*|W| identities enumerate every
/// (website, locality) pair — they seed the initial D-ring in Flower-CDN
/// runs (and are ordinary peers in Squirrel runs).
class ExperimentEnv {
 public:
  struct Identity {
    PeerId id = kInvalidPeer;
    WebsiteId website = 0;
    LocalityId locality = 0;
    ContentStore store;  // persists across sessions (browser cache)
  };

  explicit ExperimentEnv(const ExperimentConfig& config);
  ExperimentEnv(const ExperimentEnv&) = delete;
  ExperimentEnv& operator=(const ExperimentEnv&) = delete;

  const ExperimentConfig& config() const { return config_; }
  Simulator& sim() { return sim_; }
  Topology& topology() { return topology_; }
  Network& network() { return network_; }
  const WebsiteCatalog& catalog() const { return catalog_; }
  const QueryWorkload& workload() const { return workload_; }
  /// Mutable access for chaos actions (flash-crowd rate multipliers).
  QueryWorkload& mutable_workload() { return workload_; }
  const OriginServers& origins() const { return origins_; }
  MetricsCollector& metrics() { return metrics_; }
  ChurnProcess& churn() { return churn_; }
  StatsRegistry& stats() { return stats_; }
  /// Non-null iff config.collect_traces. Shared so results can outlive the
  /// environment without copying the span store.
  const std::shared_ptr<TraceCollector>& trace() const { return trace_; }
  TraceCollector* trace_ptr() const { return trace_.get(); }

  size_t universe_size() const { return identities_.size(); }
  Identity& identity(PeerId id);
  const Identity& identity(PeerId id) const;
  std::vector<Identity>& identities() { return identities_; }

  /// Identity seeded for directory position (ws, loc) — among the first
  /// k*|W| identities.
  PeerId InitialDirectoryIdentity(WebsiteId ws, LocalityId loc) const;

  /// Deterministic per-identity RNG stream.
  Rng MakePeerRng(PeerId id) const;

  /// Forked stream for a named subsystem.
  Rng MakeRng(std::string_view tag) const { return root_rng_.Fork(tag); }

 private:
  ExperimentConfig config_;
  Rng root_rng_;
  Simulator sim_;
  Topology topology_;
  Network network_;
  WebsiteCatalog catalog_;
  QueryWorkload workload_;
  OriginServers origins_;
  MetricsCollector metrics_;
  ChurnProcess churn_;
  StatsRegistry stats_;
  std::shared_ptr<TraceCollector> trace_;  // null when tracing is off
  std::vector<Identity> identities_;  // index = PeerId - 1
};

}  // namespace flowercdn

#endif  // FLOWERCDN_EXPT_ENV_H_
