#ifndef FLOWERCDN_EXPT_CONFIG_H_
#define FLOWERCDN_EXPT_CONFIG_H_

#include <cstdint>

#include "chaos/scenario.h"
#include "flower/params.h"
#include "metrics/metrics.h"
#include "sim/churn.h"
#include "sim/network.h"
#include "sim/topology.h"
#include "squirrel/squirrel_peer.h"
#include "storage/origin.h"
#include "storage/website.h"
#include "storage/workload.h"

namespace flowercdn {

/// Full configuration of one simulated deployment, defaulting to the
/// paper's Table 1: latencies 10-500 ms, k=6 localities, |W|=100 websites
/// of 500 objects (6 active), mean uptime 60 min, 1 query / 6 min / peer,
/// push threshold 0.5, gossip/keepalive period 1 h, population converging
/// to P with a 1.3*P identity universe, 24 simulated hours.
struct ExperimentConfig {
  uint64_t seed = 42;

  /// Event-scheduler backend. Ladder (default) and heap produce
  /// byte-identical results; heap is kept as the cross-check baseline.
  KernelKind kernel = KernelKind::kLadder;

  /// Target steady-state population P (Table 1: 2000/3000/4000/5000).
  size_t target_population = 2000;
  /// Identity universe = target_population * universe_factor (Table 1:
  /// "total network size P * 1.3").
  double universe_factor = 1.3;
  /// Simulated experiment length (paper: 24 hours).
  SimDuration duration = 24 * kHour;
  /// Mean session uptime m (Table 1: 60 min). Peers always fail abruptly.
  SimDuration mean_uptime = 60 * kMinute;
  bool churn_enabled = true;
  /// When non-zero, overrides the derived Poisson arrival rate (peers/ms).
  /// Lets tests decouple arrivals from uptime (e.g. "everyone joins, nobody
  /// dies").
  double arrival_rate_override_per_ms = 0.0;
  /// Whether a re-joining identity keeps its browser cache. The paper does
  /// not pin this down; true models a persistent browser cache (and is
  /// identical for both systems).
  bool retain_cache_on_rejoin = true;
  /// Gap between consecutive initial directory-peer launches (bounds the
  /// join storm while the initial D-ring assembles).
  SimDuration initial_join_stagger = 20;

  /// Period of the overlay-state / traffic samplers (and the bucket width
  /// of the stats registry's per-time series). Paper-style reporting uses
  /// one simulated hour.
  SimDuration stats_interval = kHour;
  /// When true, every client query records per-phase spans into a
  /// TraceCollector (exportable as Chrome trace-event JSON).
  bool collect_traces = false;
  /// Span-storage cap of the trace collector (histograms keep counting
  /// past it).
  size_t trace_max_queries = 200000;

  Topology::Params topology;
  WebsiteCatalog::Params catalog;
  QueryWorkload::Params workload;
  OriginServers::Params origin;
  MetricsCollector::Params metrics;

  FlowerParams flower;
  SquirrelPeer::Params squirrel;

  /// Fault-injection timeline; an empty script (the default) disables the
  /// chaos engine entirely and leaves the run bit-identical to before the
  /// engine existed.
  ScenarioScript chaos;

  /// How traffic is sized: modeled SizeBytes() estimates (default, the
  /// historical behavior) or actual src/wire encoded lengths. Only the
  /// reported byte counters change — delivery timing and protocol behavior
  /// are identical in both modes.
  WireMode wire_mode = WireMode::kModeled;

  /// Arrival rate (peers per ms): the override when set, else the rate
  /// P/m that keeps the population at P.
  double ArrivalRatePerMs() const {
    if (arrival_rate_override_per_ms > 0) return arrival_rate_override_per_ms;
    return static_cast<double>(target_population) /
           static_cast<double>(mean_uptime);
  }
  /// Derived identity-universe size.
  size_t UniverseSize() const {
    size_t universe = static_cast<size_t>(
        static_cast<double>(target_population) * universe_factor);
    // Never smaller than the initial D-ring population (k * |W|).
    size_t initial = static_cast<size_t>(catalog.num_websites) *
                     static_cast<size_t>(topology.num_localities);
    return universe > initial ? universe : initial;
  }
};

}  // namespace flowercdn

#endif  // FLOWERCDN_EXPT_CONFIG_H_
