#ifndef FLOWERCDN_EXPT_FLOWER_SYSTEM_H_
#define FLOWERCDN_EXPT_FLOWER_SYSTEM_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "expt/env.h"
#include "flower/dring.h"
#include "flower/flower_peer.h"
#include "obs/sampler.h"

namespace flowercdn {

/// Drives a full Flower-CDN / PetalUp-CDN deployment inside an
/// ExperimentEnv: seeds the initial D-ring (one directory peer per
/// (website, locality), k*|W| in total), wires churn arrivals/failures to
/// session creation/destruction, maintains the bootstrap registry of live
/// directory peers, and aggregates protocol statistics.
class FlowerSystem {
 public:
  FlowerSystem(ExperimentEnv* env, const FlowerParams& params);

  /// Creates the initial population and starts churn. Call once, before
  /// running the simulator.
  void Setup();

  /// Periodic snapshot of directory load (for the PetalUp analyses).
  struct LoadSample {
    SimTime time = 0;
    size_t directory_count = 0;
    size_t max_load = 0;
    double mean_load = 0;
    int max_instance = 0;
  };

  const std::vector<LoadSample>& load_samples() const {
    return load_samples_;
  }

  /// Hourly overlay snapshots (config.stats_interval): role census,
  /// directory-load and petal-size distributions.
  const std::vector<OverlaySample>& overlay_samples() const;
  /// One overlay snapshot of the current state; public for tests.
  OverlaySample ProbeOverlay() const;

  /// Aggregate protocol counters (live sessions + departed sessions).
  struct Stats {
    uint64_t queries_issued = 0;
    uint64_t dring_resolve_failures = 0;
    uint64_t dir_reply_vacant = 0;
    uint64_t dir_query_timeouts = 0;
    uint64_t dir_failures_detected = 0;
    uint64_t promotions_triggered = 0;
    uint64_t summary_hits = 0;
    uint64_t collaboration_hits = 0;
    size_t live_sessions = 0;
    size_t live_directories = 0;
    size_t max_observed_directory_load = 0;
    int max_observed_instance = 0;
  };
  Stats ComputeStats() const;

  /// Live session lookup (tests / examples). Null when the peer is offline.
  FlowerPeer* session(PeerId peer);
  size_t live_sessions() const { return sessions_.size(); }
  const DRingKeyspace& keyspace() const { return keyspace_; }

  /// Peers currently acting as directory peers (the bootstrap registry).
  const std::vector<PeerId>& live_directories() const {
    return dir_registry_;
  }

  /// The live directory of petal (ws, loc, instance), if any.
  FlowerPeer* FindDirectory(WebsiteId ws, LocalityId loc, int instance = 0);

  /// Kills a specific peer immediately (failure injection for tests and
  /// the maintenance-recovery bench). No-op if offline.
  void InjectFailure(PeerId peer);

  /// Chaos-engine hooks: whether petal (ws, loc) has a live primary
  /// directory, and killing it. KillDirectory returns false when the petal
  /// has no live directory to kill.
  bool HasDirectory(WebsiteId ws, LocalityId loc);
  bool KillDirectory(WebsiteId ws, LocalityId loc);

  /// Makes a directory peer leave gracefully with handoff (§5.2.2).
  void InjectGracefulLeave(PeerId peer);

 private:
  void OnArrival(PeerId peer);
  void OnFailure(PeerId peer);
  void DestroySession(PeerId peer);
  PeerId PickDirectoryBootstrap(PeerId self);
  void OnRoleChange(PeerId peer, FlowerRole role);
  void RegistryAdd(PeerId peer);
  void RegistryRemove(PeerId peer);
  void ScheduleLoadSampling();

  ExperimentEnv* env_;
  FlowerParams params_;
  DRingKeyspace keyspace_;
  FlowerContext ctx_;
  Rng rng_;

  std::unordered_map<PeerId, std::unique_ptr<FlowerPeer>> sessions_;
  // Bootstrap registry of live directory peers (O(1) random pick).
  std::vector<PeerId> dir_registry_;
  std::unordered_map<PeerId, size_t> dir_registry_index_;

  // Counters accumulated from departed sessions.
  uint64_t dead_queries_issued_ = 0;
  uint64_t dead_dring_failures_ = 0;
  uint64_t dead_vacant_ = 0;
  uint64_t dead_dir_timeouts_ = 0;
  uint64_t dead_dir_failures_ = 0;
  uint64_t dead_promotions_ = 0;
  uint64_t dead_summary_hits_ = 0;
  uint64_t dead_collab_hits_ = 0;
  size_t max_observed_directory_load_ = 0;
  int max_observed_instance_ = 0;

  std::vector<LoadSample> load_samples_;
  SimDuration load_sample_period_ = 30 * kMinute;
  std::unique_ptr<OverlaySampler> overlay_sampler_;
};

}  // namespace flowercdn

#endif  // FLOWERCDN_EXPT_FLOWER_SYSTEM_H_
