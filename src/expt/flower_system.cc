#include "expt/flower_system.h"

#include <algorithm>
#include <map>
#include <utility>

#include "util/logging.h"

namespace flowercdn {

FlowerSystem::FlowerSystem(ExperimentEnv* env, const FlowerParams& params)
    : env_(env),
      params_(params),
      keyspace_(env->config().catalog.num_websites,
                env->config().topology.num_localities,
                params.max_instances),
      rng_(env->MakeRng("flower-system")) {
  FLOWERCDN_CHECK(env != nullptr);
  ctx_.network = &env_->network();
  ctx_.metrics = &env_->metrics();
  ctx_.catalog = &env_->catalog();
  ctx_.workload = &env_->workload();
  ctx_.origins = &env_->origins();
  ctx_.keyspace = &keyspace_;
  ctx_.params = &params_;
  ctx_.trace = env_->trace_ptr();
  ctx_.stats = &env_->stats();
  ctx_.pick_dring_bootstrap = [this](PeerId self) {
    return PickDirectoryBootstrap(self);
  };
  ctx_.on_role_change = [this](PeerId peer, FlowerRole role) {
    OnRoleChange(peer, role);
  };
}

void FlowerSystem::Setup() {
  ChurnProcess& churn = env_->churn();
  churn.SetHandlers([this](PeerId peer) { OnArrival(peer); },
                    [this](PeerId peer) { OnFailure(peer); });

  const int k = env_->config().topology.num_localities;
  const int num_websites = env_->config().catalog.num_websites;
  const size_t initial = static_cast<size_t>(num_websites) * k;

  // Launch the initial D-ring: one directory peer per (website, locality),
  // staggered slightly so the ring assembles without a join storm. Their
  // sessions have regular (limited) uptimes, per §6.1.
  size_t launched = 0;
  for (int ws = 0; ws < num_websites; ++ws) {
    for (int loc = 0; loc < k; ++loc) {
      PeerId peer = env_->InitialDirectoryIdentity(
          static_cast<WebsiteId>(ws), static_cast<LocalityId>(loc));
      SimDuration at = static_cast<SimDuration>(launched) *
                       env_->config().initial_join_stagger;
      bool create_ring = launched == 0;
      env_->sim().Schedule(at, [this, peer, create_ring]() {
        const ExperimentEnv::Identity& identity = env_->identity(peer);
        auto session = std::make_unique<FlowerPeer>(
            ctx_, peer, identity.website, identity.locality,
            &env_->identity(peer).store, env_->MakePeerRng(peer));
        FlowerPeer* raw = session.get();
        sessions_.emplace(peer, std::move(session));
        env_->churn().StartSession(peer);
        if (create_ring) {
          raw->StartAsDirectory(0, std::nullopt);
        } else {
          PeerId bootstrap = PickDirectoryBootstrap(peer);
          raw->StartAsDirectory(0, bootstrap == kInvalidPeer
                                       ? std::nullopt
                                       : std::optional<PeerId>(bootstrap));
        }
      });
      ++launched;
    }
  }

  // Everyone else starts in the offline pool, joining through churn
  // arrivals.
  for (size_t i = initial; i < env_->universe_size(); ++i) {
    env_->churn().AddOfflineIdentity(static_cast<PeerId>(i + 1));
  }
  churn.Start();
  ScheduleLoadSampling();
  overlay_sampler_ = std::make_unique<OverlaySampler>(
      &env_->sim(), env_->config().stats_interval);
  overlay_sampler_->Start([this] { return ProbeOverlay(); });
}

const std::vector<OverlaySample>& FlowerSystem::overlay_samples() const {
  static const std::vector<OverlaySample> kEmpty;
  return overlay_sampler_ != nullptr ? overlay_sampler_->samples() : kEmpty;
}

OverlaySample FlowerSystem::ProbeOverlay() const {
  OverlaySample sample;
  sample.alive_peers = sessions_.size();
  std::vector<uint64_t> dir_loads;
  // Petal sizes keyed by (website, locality); an ordered map is not needed
  // for determinism (DistSummary sorts the values), but costs nothing.
  std::map<std::pair<WebsiteId, LocalityId>, uint64_t> petal_sizes;
  for (const auto& [peer, session] : sessions_) {
    switch (session->role()) {
      case FlowerRole::kClient:
        ++sample.clients;
        break;
      case FlowerRole::kContentPeer:
        ++sample.content_peers;
        ++petal_sizes[{session->website(), session->locality()}];
        break;
      case FlowerRole::kDirectoryPeer:
        ++sample.directory_peers;
        dir_loads.push_back(session->view().size());
        sample.max_instance =
            std::max(sample.max_instance, session->instance());
        break;
    }
  }
  std::vector<uint64_t> petals;
  petals.reserve(petal_sizes.size());
  for (const auto& [key, size] : petal_sizes) petals.push_back(size);
  sample.directory_load = DistSummary::FromValues(std::move(dir_loads));
  sample.petal_size = DistSummary::FromValues(std::move(petals));
  return sample;
}

void FlowerSystem::OnArrival(PeerId peer) {
  const ExperimentEnv::Identity& identity = env_->identity(peer);
  if (!env_->config().retain_cache_on_rejoin) {
    env_->identity(peer).store = ContentStore();
  }
  auto session = std::make_unique<FlowerPeer>(
      ctx_, peer, identity.website, identity.locality,
      &env_->identity(peer).store, env_->MakePeerRng(peer));
  FlowerPeer* raw = session.get();
  sessions_.emplace(peer, std::move(session));
  raw->StartAsClient();
}

void FlowerSystem::OnFailure(PeerId peer) { DestroySession(peer); }

void FlowerSystem::DestroySession(PeerId peer) {
  auto it = sessions_.find(peer);
  if (it == sessions_.end()) return;
  FlowerPeer* session = it->second.get();
  dead_queries_issued_ += session->queries_issued();
  dead_dring_failures_ += session->dring_resolve_failures();
  dead_vacant_ += session->dir_reply_vacant();
  dead_dir_timeouts_ += session->dir_query_timeouts();
  dead_dir_failures_ += session->dir_failures_detected();
  dead_promotions_ += session->promotions_triggered();
  dead_summary_hits_ += session->summary_hits();
  dead_collab_hits_ += session->collaboration_hits();
  if (session->role() == FlowerRole::kDirectoryPeer) {
    max_observed_directory_load_ =
        std::max(max_observed_directory_load_, session->view().size());
    max_observed_instance_ =
        std::max(max_observed_instance_, session->instance());
  }
  RegistryRemove(peer);
  if (env_->network().IsAlive(peer)) env_->network().Detach(peer);
  sessions_.erase(it);
}

PeerId FlowerSystem::PickDirectoryBootstrap(PeerId self) {
  // Up to a few tries: the registry is pruned lazily on failures, so every
  // entry should be alive, but protect against same-event races.
  for (int attempt = 0; attempt < 5 && !dir_registry_.empty(); ++attempt) {
    PeerId candidate = dir_registry_[rng_.Index(dir_registry_.size())];
    if (candidate != self && env_->network().IsAlive(candidate)) {
      return candidate;
    }
  }
  return kInvalidPeer;
}

void FlowerSystem::OnRoleChange(PeerId peer, FlowerRole role) {
  if (role == FlowerRole::kDirectoryPeer) {
    RegistryAdd(peer);
  } else {
    RegistryRemove(peer);
  }
}

void FlowerSystem::RegistryAdd(PeerId peer) {
  if (dir_registry_index_.count(peer) > 0) return;
  dir_registry_index_[peer] = dir_registry_.size();
  dir_registry_.push_back(peer);
}

void FlowerSystem::RegistryRemove(PeerId peer) {
  auto it = dir_registry_index_.find(peer);
  if (it == dir_registry_index_.end()) return;
  size_t idx = it->second;
  PeerId moved = dir_registry_.back();
  dir_registry_[idx] = moved;
  dir_registry_index_[moved] = idx;
  dir_registry_.pop_back();
  dir_registry_index_.erase(peer);
}

void FlowerSystem::ScheduleLoadSampling() {
  env_->sim().Schedule(load_sample_period_, [this]() {
    LoadSample sample;
    sample.time = env_->sim().now();
    size_t total_load = 0;
    for (const auto& [peer, session] : sessions_) {
      if (session->role() != FlowerRole::kDirectoryPeer) continue;
      ++sample.directory_count;
      size_t load = session->view().size();
      total_load += load;
      sample.max_load = std::max(sample.max_load, load);
      sample.max_instance = std::max(sample.max_instance,
                                     session->instance());
    }
    if (sample.directory_count > 0) {
      sample.mean_load = static_cast<double>(total_load) /
                         static_cast<double>(sample.directory_count);
    }
    max_observed_directory_load_ =
        std::max(max_observed_directory_load_, sample.max_load);
    max_observed_instance_ =
        std::max(max_observed_instance_, sample.max_instance);
    load_samples_.push_back(sample);
    ScheduleLoadSampling();
  });
}

FlowerSystem::Stats FlowerSystem::ComputeStats() const {
  Stats stats;
  stats.queries_issued = dead_queries_issued_;
  stats.dring_resolve_failures = dead_dring_failures_;
  stats.dir_reply_vacant = dead_vacant_;
  stats.dir_query_timeouts = dead_dir_timeouts_;
  stats.dir_failures_detected = dead_dir_failures_;
  stats.promotions_triggered = dead_promotions_;
  stats.summary_hits = dead_summary_hits_;
  stats.collaboration_hits = dead_collab_hits_;
  stats.live_sessions = sessions_.size();
  stats.max_observed_directory_load = max_observed_directory_load_;
  stats.max_observed_instance = max_observed_instance_;
  for (const auto& [peer, session] : sessions_) {
    stats.queries_issued += session->queries_issued();
    stats.dring_resolve_failures += session->dring_resolve_failures();
    stats.dir_reply_vacant += session->dir_reply_vacant();
    stats.dir_query_timeouts += session->dir_query_timeouts();
    stats.dir_failures_detected += session->dir_failures_detected();
    stats.promotions_triggered += session->promotions_triggered();
    stats.summary_hits += session->summary_hits();
    stats.collaboration_hits += session->collaboration_hits();
    if (session->role() == FlowerRole::kDirectoryPeer) {
      ++stats.live_directories;
      stats.max_observed_directory_load = std::max(
          stats.max_observed_directory_load, session->view().size());
      stats.max_observed_instance =
          std::max(stats.max_observed_instance, session->instance());
    }
  }
  return stats;
}

FlowerPeer* FlowerSystem::FindDirectory(WebsiteId ws, LocalityId loc,
                                        int instance) {
  for (PeerId peer : dir_registry_) {
    auto it = sessions_.find(peer);
    if (it == sessions_.end()) continue;
    FlowerPeer* s = it->second.get();
    if (s->role() == FlowerRole::kDirectoryPeer && s->website() == ws &&
        s->locality() == loc && s->instance() == instance) {
      return s;
    }
  }
  return nullptr;
}

FlowerPeer* FlowerSystem::session(PeerId peer) {
  auto it = sessions_.find(peer);
  return it == sessions_.end() ? nullptr : it->second.get();
}

void FlowerSystem::InjectFailure(PeerId peer) { DestroySession(peer); }

bool FlowerSystem::HasDirectory(WebsiteId ws, LocalityId loc) {
  return FindDirectory(ws, loc) != nullptr;
}

bool FlowerSystem::KillDirectory(WebsiteId ws, LocalityId loc) {
  FlowerPeer* dir = FindDirectory(ws, loc);
  if (dir == nullptr) return false;
  InjectFailure(dir->self());
  return true;
}

void FlowerSystem::InjectGracefulLeave(PeerId peer) {
  auto it = sessions_.find(peer);
  if (it == sessions_.end()) return;
  it->second->LeaveGracefully();
  DestroySession(peer);
}

}  // namespace flowercdn
