#include "metrics/metrics.h"

#include "util/logging.h"

namespace flowercdn {

MetricsCollector::MetricsCollector(const Params& params)
    : params_(params),
      lookup_all_(params.lookup_bucket_ms, params.lookup_buckets),
      lookup_hits_(params.lookup_bucket_ms, params.lookup_buckets),
      transfer_all_(params.transfer_bucket_ms, params.transfer_buckets),
      transfer_hits_(params.transfer_bucket_ms, params.transfer_buckets) {
  FLOWERCDN_CHECK(params.time_bucket > 0);
}

void MetricsCollector::RecordQuery(const QueryRecord& record) {
  ++total_queries_;
  if (record.from_new_client) {
    ++new_client_queries_;
    if (record.hit) ++new_client_hits_;
    new_client_lookup_sum_ += record.lookup_latency_ms;
  }
  lookup_all_.Add(record.lookup_latency_ms);
  transfer_all_.Add(record.transfer_distance_ms);
  if (record.hit) {
    ++hits_;
    lookup_hits_.Add(record.lookup_latency_ms);
    transfer_hits_.Add(record.transfer_distance_ms);
  }
  size_t idx = static_cast<size_t>(record.issued_at / params_.time_bucket);
  if (idx >= buckets_.size()) {
    size_t old = buckets_.size();
    buckets_.resize(idx + 1);
    for (size_t i = old; i < buckets_.size(); ++i) {
      buckets_[i].bucket_start = static_cast<SimTime>(i) * params_.time_bucket;
    }
  }
  ++buckets_[idx].queries;
  if (record.hit) ++buckets_[idx].hits;
}

double MetricsCollector::MeanNewClientLookupMs() const {
  return new_client_queries_
             ? new_client_lookup_sum_ / static_cast<double>(new_client_queries_)
             : 0.0;
}

double MetricsCollector::MeanEstablishedLookupMs() const {
  uint64_t established = total_queries_ - new_client_queries_;
  return established ? (lookup_all_.sum() - new_client_lookup_sum_) /
                           static_cast<double>(established)
                     : 0.0;
}

double MetricsCollector::HitRatio() const {
  return total_queries_ ? static_cast<double>(hits_) / total_queries_ : 0.0;
}

std::vector<MetricsCollector::TimePoint> MetricsCollector::TimeSeries()
    const {
  return buckets_;
}

std::vector<double> MetricsCollector::CumulativeHitRatioSeries() const {
  std::vector<double> out;
  out.reserve(buckets_.size());
  uint64_t q = 0, h = 0;
  for (const TimePoint& b : buckets_) {
    q += b.queries;
    h += b.hits;
    out.push_back(q ? static_cast<double>(h) / q : 0.0);
  }
  return out;
}

}  // namespace flowercdn
