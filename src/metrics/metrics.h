#ifndef FLOWERCDN_METRICS_METRICS_H_
#define FLOWERCDN_METRICS_METRICS_H_

#include <cstdint>
#include <vector>

#include "sim/types.h"
#include "util/histogram.h"

namespace flowercdn {

/// Everything the paper measures about one resolved client query.
struct QueryRecord {
  SimTime issued_at = 0;
  /// True when the object was served from the P2P system (a peer cache);
  /// false when the origin web server had to serve it. The paper's metric
  /// (1): hit ratio = fraction of queries served from the P2P system.
  bool hit = false;
  /// Metric (2): latency from query submission until the destination that
  /// will provide the object is known, in ms.
  double lookup_latency_ms = 0;
  /// Metric (3): network distance (one-way latency) from the querying peer
  /// to the provider — a content peer on a hit, the origin on a miss.
  double transfer_distance_ms = 0;
  /// True when the query came from a new client routed over the DHT (vs. a
  /// content peer resolving inside its petal).
  bool from_new_client = false;
};

/// Accumulates query records into the paper's three metrics: overall and
/// windowed hit ratio (Fig. 3), lookup-latency distribution (Fig. 4) and
/// transfer-distance distribution (Fig. 5), plus the Table 2 summary row.
class MetricsCollector {
 public:
  struct Params {
    /// Window of the hit-ratio time series.
    SimDuration time_bucket = kHour;
    double lookup_bucket_ms = 50.0;
    size_t lookup_buckets = 60;  // covers 0..3000 ms + overflow
    double transfer_bucket_ms = 20.0;
    size_t transfer_buckets = 30;  // covers 0..600 ms + overflow
  };

  MetricsCollector() : MetricsCollector(Params{}) {}
  explicit MetricsCollector(const Params& params);

  void RecordQuery(const QueryRecord& record);

  // --- Aggregates ----------------------------------------------------------
  uint64_t total_queries() const { return total_queries_; }
  uint64_t hits() const { return hits_; }
  double HitRatio() const;
  double MeanLookupMs() const { return lookup_all_.Mean(); }
  double MeanTransferMs() const { return transfer_all_.Mean(); }
  double MeanTransferHitsMs() const { return transfer_hits_.Mean(); }

  /// Split by query source: new clients routed over the DHT vs established
  /// peers resolving locally. Explains where latency comes from.
  uint64_t new_client_queries() const { return new_client_queries_; }
  uint64_t new_client_hits() const { return new_client_hits_; }
  double MeanNewClientLookupMs() const;
  double MeanEstablishedLookupMs() const;

  // --- Distributions ---------------------------------------------------------
  const Histogram& lookup_all() const { return lookup_all_; }
  const Histogram& lookup_hits() const { return lookup_hits_; }
  const Histogram& transfer_all() const { return transfer_all_; }
  const Histogram& transfer_hits() const { return transfer_hits_; }

  // --- Hit ratio over time (Fig. 3) ----------------------------------------
  struct TimePoint {
    SimTime bucket_start = 0;
    uint64_t queries = 0;
    uint64_t hits = 0;
    /// Hit ratio of queries inside this window.
    double WindowRatio() const {
      return queries ? static_cast<double>(hits) / queries : 0.0;
    }
  };

  /// Per-window counts, ordered by time (empty windows included).
  std::vector<TimePoint> TimeSeries() const;

  /// Cumulative hit ratio at the end of each window — the curve shape the
  /// paper's Fig. 3 plots.
  std::vector<double> CumulativeHitRatioSeries() const;

  const Params& params() const { return params_; }

 private:
  Params params_;
  uint64_t total_queries_ = 0;
  uint64_t hits_ = 0;
  uint64_t new_client_queries_ = 0;
  uint64_t new_client_hits_ = 0;
  double new_client_lookup_sum_ = 0;
  Histogram lookup_all_;
  Histogram lookup_hits_;
  Histogram transfer_all_;
  Histogram transfer_hits_;
  std::vector<TimePoint> buckets_;  // indexed by issued_at / time_bucket
};

}  // namespace flowercdn

#endif  // FLOWERCDN_METRICS_METRICS_H_
