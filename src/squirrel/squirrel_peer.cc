#include "squirrel/squirrel_peer.h"

#include <algorithm>
#include <utility>

#include "simcore/intern.h"
#include "util/hash.h"
#include "util/logging.h"

namespace flowercdn {

namespace {

/// A peer's ring position is a stable function of its identity, so a
/// re-joining peer reclaims the same position.
ChordId SquirrelRingId(PeerId peer) {
  return ChordHash("squirrel-peer-" + std::to_string(peer));
}

/// HomeKey() builds a synthetic URL string and hashes it; queries revisit a
/// small hot set of objects millions of times per trial, so the pure
/// ObjectId -> ring-key mapping is memoized. Thread-local because trials
/// run on worker threads; the mapping is identical on every thread, so
/// sharing is unnecessary and determinism is unaffected.
ChordId CachedHomeKey(const ObjectId& object) {
  static thread_local U64Memo memo;
  return static_cast<ChordId>(memo.GetOrCompute(
      object.Packed(),
      [&object] { return static_cast<uint64_t>(object.HomeKey()); }));
}

}  // namespace

const char* SquirrelModeName(SquirrelMode mode) {
  switch (mode) {
    case SquirrelMode::kDirectory:
      return "directory";
    case SquirrelMode::kHomeStore:
      return "home-store";
  }
  return "?";
}

SquirrelPeer::SquirrelPeer(const SquirrelContext& ctx, PeerId self,
                           WebsiteId website, ContentStore* store, Rng rng,
                           const Params& params)
    : ctx_(ctx),
      self_(self),
      website_(website),
      store_(store),
      rng_(rng),
      params_(params),
      chord_(ctx.network, self, SquirrelRingId(self), params.chord),
      rpc_(ctx.network, self) {
  FLOWERCDN_CHECK(store != nullptr);
}

void SquirrelPeer::Start(std::optional<PeerId> bootstrap) {
  incarnation_ = ctx_.network->Attach(self_, this);
  chord_.Bind(incarnation_);
  rpc_.Bind(incarnation_);
  chord_.on_predecessor_changed = [this](const std::optional<RingPeer>& old,
                                         const RingPeer& fresh) {
    HandoffToNewPredecessor(old, fresh);
  };
  if (!bootstrap.has_value()) {
    chord_.CreateRing();
    StartQuerying();
    return;
  }
  TryJoin(*bootstrap);
}

void SquirrelPeer::TryJoin(PeerId bootstrap) {
  ++join_attempts_;
  chord_.Join(bootstrap, [this](const Status& status) {
    if (status.ok()) {
      StartQuerying();
      return;
    }
    if (join_attempts_ >= params_.max_join_attempts) {
      FLOWERCDN_LOG(kDebug) << "squirrel peer " << self_
                            << " exhausted join attempts";
      return;  // stranded until it churns out
    }
    ctx_.network->SchedulePeer(self_, incarnation_, params_.join_retry_delay,
                               [this]() {
                                 PeerId next = ctx_.pick_bootstrap
                                                   ? ctx_.pick_bootstrap(self_)
                                                   : kInvalidPeer;
                                 if (next == kInvalidPeer) return;
                                 TryJoin(next);
                               });
  });
}

// --- Client side -------------------------------------------------------------

void SquirrelPeer::StartQuerying() {
  if (querying_) return;
  if (!ctx_.catalog->IsActive(website_)) return;
  querying_ = true;
  ScheduleNextQuery();
}

void SquirrelPeer::ScheduleNextQuery() {
  SimDuration gap = ctx_.workload->NextQueryGap(website_, rng_);
  ctx_.network->SchedulePeer(self_, incarnation_, gap,
                             [this]() { IssueQuery(); });
}

void SquirrelPeer::IssueQuery() {
  if (!chord_.active()) {
    ScheduleNextQuery();
    return;
  }
  std::optional<ObjectId> object =
      ctx_.workload->NextQuery(website_, *store_, rng_);
  if (!object.has_value()) return;  // nothing left to ask for
  ++queries_issued_;
  SimTime t0 = ctx_.network->sim()->now();
  // Squirrel resolves every query through the object's home node, found by
  // routing hash(url) over the whole DHT.
  chord_.Lookup(CachedHomeKey(*object),
                [this, object = *object, t0](const Status& status,
                                             RingPeer home, int /*hops*/) {
                  OnHomeResolved(object, t0, status, home);
                });
}

void SquirrelPeer::OnHomeResolved(const ObjectId& object, SimTime t0,
                                  const Status& status, RingPeer home) {
  if (!status.ok()) {
    // DHT routing failed outright (heavy churn): the origin saves the day.
    ++lookup_failures_;
    ResolveAtOrigin(object, t0, std::nullopt);
    return;
  }
  if (home.peer == self_) {
    // We are the home node ourselves.
    if (params_.mode == SquirrelMode::kHomeStore) {
      // Degenerate: the workload never re-queries the browser cache, and
      // the home replica lives on this very node — count it as a hit at
      // zero distance only if the replica exists.
      if (home_store_.count(object.Packed()) > 0) {
        ++home_redirects_;
        FinishQuery(object, t0, /*hit=*/true, ctx_.network->sim()->now(),
                    0.0);
      } else {
        ++home_empty_;
        ResolveAtOrigin(object, t0, self_);
      }
      return;
    }
    auto it = directory_.find(object.Packed());
    if (it != directory_.end() && !it->second.empty()) {
      ++home_redirects_;
      PeerId delegate = it->second[rng_.Index(it->second.size())];
      FetchFromDelegate(object, t0, self_, delegate,
                        ctx_.network->sim()->now());
    } else {
      ++home_empty_;
      ResolveAtOrigin(object, t0, self_);
    }
    return;
  }
  AskHome(object, t0, home);
}

void SquirrelPeer::AskHome(const ObjectId& object, SimTime t0,
                           RingPeer home) {
  auto msg = std::make_unique<SquirrelQueryMsg>();
  msg->object = object;
  rpc_.Call(home.peer, std::move(msg), params_.rpc_timeout,
            [this, object, t0, home](const Status& status, MessagePtr resp) {
              if (!status.ok()) {
                // Home died between lookup and query.
                ++lookup_failures_;
                ResolveAtOrigin(object, t0, std::nullopt);
                return;
              }
              const auto& reply = MessageCast<SquirrelQueryReplyMsg>(*resp);
              if (reply.served_directly) {
                // Home-store: the home shipped its replica with the reply.
                ++home_redirects_;
                FinishQuery(object, t0, /*hit=*/true,
                            ctx_.network->sim()->now(),
                            ctx_.network->LatencyMs(self_, home.peer));
              } else if (reply.has_delegate) {
                ++home_redirects_;
                FetchFromDelegate(object, t0, home.peer, reply.delegate,
                                  ctx_.network->sim()->now());
              } else {
                ++home_empty_;
                ResolveAtOrigin(object, t0, home.peer);
              }
            });
}

void SquirrelPeer::FetchFromDelegate(const ObjectId& object, SimTime t0,
                                     PeerId home_peer, PeerId delegate,
                                     SimTime resolved_at) {
  if (delegate == self_) {
    // Degenerate redirect (stale directory); treat as a miss path.
    ResolveAtOrigin(object, t0, home_peer);
    return;
  }
  auto msg = std::make_unique<SquirrelFetchMsg>();
  msg->object = object;
  rpc_.Call(delegate, std::move(msg), params_.rpc_timeout,
            [this, object, t0, home_peer, delegate, resolved_at](
                const Status& status, MessagePtr resp) {
              bool served = status.ok() &&
                            MessageCast<SquirrelFetchReplyMsg>(*resp)
                                .has_object;
              if (served) {
                FinishQuery(object, t0, /*hit=*/true, resolved_at,
                            ctx_.network->LatencyMs(self_, delegate));
                // Register ourselves as a fresh downloader.
                auto update = std::make_unique<SquirrelUpdateMsg>();
                update->object = object;
                ctx_.network->Send(self_, home_peer, std::move(update));
              } else {
                ++delegate_failures_;
                ResolveAtOrigin(object, t0, home_peer);
              }
            });
}

void SquirrelPeer::ResolveAtOrigin(const ObjectId& object, SimTime t0,
                                   std::optional<PeerId> home_peer) {
  SimTime resolved_at = ctx_.network->sim()->now();
  Coord here = ctx_.network->CoordOf(self_);
  double distance = ctx_.origins->DistanceMs(here, object.website);
  FinishQuery(object, t0, /*hit=*/false, resolved_at, distance);
  if (home_peer.has_value()) {
    if (*home_peer == self_) {
      if (params_.mode == SquirrelMode::kHomeStore) {
        home_store_.insert(object.Packed());
      } else {
        AddDelegate(object, self_);
      }
    } else {
      auto update = std::make_unique<SquirrelUpdateMsg>();
      update->object = object;
      ctx_.network->Send(self_, *home_peer, std::move(update));
    }
  }
}

void SquirrelPeer::FinishQuery(const ObjectId& object, SimTime t0, bool hit,
                               SimTime resolved_at,
                               double transfer_distance_ms) {
  QueryRecord record;
  record.issued_at = t0;
  record.hit = hit;
  record.lookup_latency_ms = static_cast<double>(resolved_at - t0);
  record.transfer_distance_ms = transfer_distance_ms;
  record.from_new_client = false;  // every Squirrel query rides the DHT
  ctx_.metrics->RecordQuery(record);
  store_->Insert(object);
  ScheduleNextQuery();
}

// --- Home-node side ----------------------------------------------------------

void SquirrelPeer::OnQuery(const Message& req) {
  const auto& m = MessageCast<SquirrelQueryMsg>(req);
  auto reply = std::make_unique<SquirrelQueryReplyMsg>();
  if (params_.mode == SquirrelMode::kHomeStore) {
    reply->served_directly = home_store_.count(m.object.Packed()) > 0 ||
                             store_->Contains(m.object);
    rpc_.Respond(req, std::move(reply));
    return;
  }
  auto it = directory_.find(m.object.Packed());
  if (it != directory_.end() && !it->second.empty()) {
    reply->has_delegate = true;
    reply->delegate = it->second[rng_.Index(it->second.size())];
  } else if (store_->Contains(m.object)) {
    // The home node is itself a client and may hold a copy in its own
    // browser cache.
    reply->has_delegate = true;
    reply->delegate = self_;
  }
  rpc_.Respond(req, std::move(reply));
}

void SquirrelPeer::HandoffToNewPredecessor(
    const std::optional<RingPeer>& /*old_predecessor*/,
    const RingPeer& fresh) {
  if (fresh.peer == self_) return;
  if (directory_.empty() && home_store_.empty()) return;
  // Keys outside (new_pred, self] no longer belong to us (Chord key
  // transfer on join).
  auto msg = std::make_unique<SquirrelHandoffMsg>();
  for (auto it = directory_.begin(); it != directory_.end();) {
    ObjectId object = ObjectId::FromPacked(it->first);
    if (!InIntervalOpenClosed(CachedHomeKey(object), fresh.id,
                              chord_.id())) {
      SquirrelHandoffMsg::Entry entry;
      entry.object = object;
      entry.delegates.assign(it->second.begin(), it->second.end());
      msg->entries.push_back(std::move(entry));
      it = directory_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = home_store_.begin(); it != home_store_.end();) {
    ObjectId object = ObjectId::FromPacked(*it);
    if (!InIntervalOpenClosed(CachedHomeKey(object), fresh.id, chord_.id())) {
      SquirrelHandoffMsg::Entry entry;
      entry.object = object;
      entry.stored_copy = true;
      msg->entries.push_back(std::move(entry));
      it = home_store_.erase(it);
    } else {
      ++it;
    }
  }
  if (msg->entries.empty()) return;
  ctx_.network->Send(self_, fresh.peer, std::move(msg));
}

void SquirrelPeer::OnHandoff(const Message& msg) {
  const auto& m = MessageCast<SquirrelHandoffMsg>(msg);
  for (const SquirrelHandoffMsg::Entry& entry : m.entries) {
    if (entry.stored_copy) {
      home_store_.insert(entry.object.Packed());
      continue;
    }
    std::deque<PeerId>& delegates = directory_[entry.object.Packed()];
    // Append inherited delegates behind any we already learned (ours are
    // fresher).
    for (PeerId p : entry.delegates) {
      if (std::find(delegates.begin(), delegates.end(), p) ==
          delegates.end()) {
        delegates.push_back(p);
      }
    }
    while (delegates.size() > static_cast<size_t>(params_.max_delegates)) {
      delegates.pop_back();
    }
  }
}

void SquirrelPeer::OnFetch(const Message& req) {
  const auto& m = MessageCast<SquirrelFetchMsg>(req);
  auto reply = std::make_unique<SquirrelFetchReplyMsg>();
  reply->has_object = store_->Contains(m.object);
  rpc_.Respond(req, std::move(reply));
}

void SquirrelPeer::OnUpdate(const Message& msg) {
  const auto& m = MessageCast<SquirrelUpdateMsg>(msg);
  if (params_.mode == SquirrelMode::kHomeStore) {
    // The downloader pushes a replica to the object's home.
    home_store_.insert(m.object.Packed());
    return;
  }
  AddDelegate(m.object, m.src);
}

void SquirrelPeer::AddDelegate(const ObjectId& object, PeerId downloader) {
  std::deque<PeerId>& delegates = directory_[object.Packed()];
  auto it = std::find(delegates.begin(), delegates.end(), downloader);
  if (it != delegates.end()) delegates.erase(it);
  delegates.push_front(downloader);
  while (delegates.size() > static_cast<size_t>(params_.max_delegates)) {
    delegates.pop_back();
  }
}

// --- Dispatch ----------------------------------------------------------------

void SquirrelPeer::HandleMessage(MessagePtr msg) {
  if (chord_.HandleMessage(msg)) return;
  if (msg == nullptr) return;
  if (msg->is_response) {
    rpc_.HandleResponse(msg);
    return;  // either consumed or stale — both end here
  }
  switch (msg->type) {
    case kSquirrelQuery:
      OnQuery(*msg);
      break;
    case kSquirrelFetch:
      OnFetch(*msg);
      break;
    case kSquirrelUpdate:
      OnUpdate(*msg);
      break;
    case kSquirrelHandoff:
      OnHandoff(*msg);
      break;
    default:
      break;  // unknown: drop
  }
}

}  // namespace flowercdn
