#ifndef FLOWERCDN_SQUIRREL_MESSAGES_H_
#define FLOWERCDN_SQUIRREL_MESSAGES_H_

#include <vector>

#include "sim/message.h"
#include "storage/object_id.h"

namespace flowercdn {

/// Wire messages of the Squirrel baseline (Iyer, Rowstron, Druschel,
/// PODC'02 — the "directory" scheme the paper compares against).
enum SquirrelMessageType : MessageType {
  kSquirrelQuery = kSquirrelMessageBase + 0,
  kSquirrelQueryReply = kSquirrelMessageBase + 1,
  kSquirrelFetch = kSquirrelMessageBase + 2,
  kSquirrelFetchReply = kSquirrelMessageBase + 3,
  kSquirrelUpdate = kSquirrelMessageBase + 4,
  kSquirrelHandoff = kSquirrelMessageBase + 5,
};

inline bool IsSquirrelMessage(MessageType t) {
  return t >= kSquirrelMessageBase && t < kSquirrelMessageBase + 100;
}

/// Client -> home node. Directory mode: "who recently downloaded this
/// object?" Home-store mode: "serve me your stored copy."
struct SquirrelQueryMsg : Message {
  SquirrelQueryMsg() { type = kSquirrelQuery; }
  ObjectId object;
};

/// Home node's answer. Directory mode: a random recent downloader, or
/// none. Home-store mode: `served_directly` when the home itself holds a
/// replica and ships it.
struct SquirrelQueryReplyMsg : Message {
  SquirrelQueryReplyMsg() { type = kSquirrelQueryReply; }
  bool has_delegate = false;
  PeerId delegate = kInvalidPeer;
  bool served_directly = false;
};

/// Client -> delegate: "serve me the object."
struct SquirrelFetchMsg : Message {
  SquirrelFetchMsg() { type = kSquirrelFetch; }
  ObjectId object;
};

struct SquirrelFetchReplyMsg : Message {
  SquirrelFetchReplyMsg() { type = kSquirrelFetchReply; }
  bool has_object = false;
};

/// Client -> home node (one-way): "I now hold a copy; add me to the
/// object's directory."
struct SquirrelUpdateMsg : Message {
  SquirrelUpdateMsg() { type = kSquirrelUpdate; }
  ObjectId object;
};

/// Old home -> new home (one-way): directory entries whose keys moved to a
/// freshly joined predecessor (Chord key transfer on join). Failures still
/// lose the directory outright — the weakness the paper exposes.
struct SquirrelHandoffMsg : Message {
  SquirrelHandoffMsg() { type = kSquirrelHandoff; }
  size_t SizeBytes() const override {
    size_t bytes = kHeaderBytes;
    for (const Entry& e : entries) bytes += 9 + 8 * e.delegates.size();
    return bytes;
  }
  struct Entry {
    ObjectId object;
    std::vector<PeerId> delegates;  // newest first (directory mode)
    bool stored_copy = false;       // home-store mode replica moves too
  };
  std::vector<Entry> entries;
};

}  // namespace flowercdn

#endif  // FLOWERCDN_SQUIRREL_MESSAGES_H_
