#ifndef FLOWERCDN_SQUIRREL_SQUIRREL_PEER_H_
#define FLOWERCDN_SQUIRREL_SQUIRREL_PEER_H_

#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "chord/chord_node.h"
#include "metrics/metrics.h"
#include "sim/network.h"
#include "sim/node.h"
#include "sim/rpc.h"
#include "squirrel/messages.h"
#include "storage/content_store.h"
#include "storage/object_id.h"
#include "storage/origin.h"
#include "storage/website.h"
#include "storage/workload.h"
#include "util/random.h"

namespace flowercdn {

/// Which of the two Squirrel schemes (Iyer et al., PODC'02) runs — the
/// paper's §2 describes both strategy types:
///  * kDirectory: the home node keeps a small directory of recent
///    downloaders and redirects requesters to one of them;
///  * kHomeStore: the home node stores a replica of the object itself and
///    serves it directly ("replicates web objects at peers with ID
///    numerically closest to the hash of the URL, without any locality or
///    interest considerations").
enum class SquirrelMode : uint8_t { kDirectory, kHomeStore };

const char* SquirrelModeName(SquirrelMode mode);

/// Shared, immutable experiment context handed to every Squirrel session.
struct SquirrelContext {
  Network* network = nullptr;
  MetricsCollector* metrics = nullptr;
  const WebsiteCatalog* catalog = nullptr;
  const QueryWorkload* workload = nullptr;
  const OriginServers* origins = nullptr;
  /// Supplies a live bootstrap peer (!= self), or kInvalidPeer if none.
  std::function<PeerId(PeerId self)> pick_bootstrap;
};

/// One live Squirrel session: an ordinary peer of the global Chord ring
/// that (a) issues queries for its website of interest, (b) acts as home
/// node for the objects whose keys it owns, keeping a small directory of
/// recent downloaders, and (c) serves its cached objects to other peers.
///
/// The scheme's fragility under churn — a home-node failure abruptly
/// destroys its object directories — is what the paper's Fig. 3 exposes.
class SquirrelPeer : public SimNode {
 public:
  struct Params {
    ChordNode::Params chord;
    SquirrelMode mode = SquirrelMode::kDirectory;
    SimDuration rpc_timeout = 800 * kMillisecond;
    /// Directory capacity per object (most recent downloaders).
    int max_delegates = 4;
    /// Delay between failed bootstrap attempts.
    SimDuration join_retry_delay = 30 * kSecond;
    int max_join_attempts = 5;
  };

  /// `store` is the identity's persistent browser cache (survives churn);
  /// owned by the experiment driver.
  SquirrelPeer(const SquirrelContext& ctx, PeerId self, WebsiteId website,
               ContentStore* store, Rng rng, const Params& params);

  /// Attaches to the network and enters the ring: creates it when
  /// `bootstrap` is empty, joins through it otherwise. Query generation
  /// (for active-website peers) starts once the ring is entered.
  void Start(std::optional<PeerId> bootstrap);

  void HandleMessage(MessagePtr msg) override;

  ChordNode& chord() { return chord_; }
  PeerId self() const { return self_; }
  WebsiteId website() const { return website_; }
  bool joined() const { return chord_.active(); }
  size_t directory_entries() const { return directory_.size(); }
  size_t home_store_size() const { return home_store_.size(); }
  uint64_t queries_issued() const { return queries_issued_; }
  uint64_t home_redirects() const { return home_redirects_; }
  uint64_t home_empty() const { return home_empty_; }
  uint64_t delegate_failures() const { return delegate_failures_; }
  uint64_t lookup_failures() const { return lookup_failures_; }

 private:
  void TryJoin(PeerId bootstrap);

  // Client side.
  void StartQuerying();
  void ScheduleNextQuery();
  void IssueQuery();
  void OnHomeResolved(const ObjectId& object, SimTime t0,
                      const Status& status, RingPeer home);
  void AskHome(const ObjectId& object, SimTime t0, RingPeer home);
  void FetchFromDelegate(const ObjectId& object, SimTime t0, PeerId home_peer,
                         PeerId delegate, SimTime resolved_at);
  void ResolveAtOrigin(const ObjectId& object, SimTime t0,
                       std::optional<PeerId> home_peer);
  void FinishQuery(const ObjectId& object, SimTime t0, bool hit,
                   SimTime resolved_at, double transfer_distance_ms);

  // Home-node side.
  void OnQuery(const Message& req);
  void OnFetch(const Message& req);
  void OnUpdate(const Message& msg);
  /// Chord key transfer: directory entries whose keys moved to a freshly
  /// joined predecessor are shipped to it.
  void HandoffToNewPredecessor(const std::optional<RingPeer>& old_predecessor,
                               const RingPeer& fresh);
  void OnHandoff(const Message& msg);
  void AddDelegate(const ObjectId& object, PeerId downloader);

  SquirrelContext ctx_;
  PeerId self_;
  WebsiteId website_;
  ContentStore* store_;
  Rng rng_;
  Params params_;
  ChordNode chord_;
  RpcEndpoint rpc_;
  Incarnation incarnation_ = 0;
  int join_attempts_ = 0;
  bool querying_ = false;

  /// Home-node directory: object -> recent downloaders (newest first).
  /// Dies with this session — Squirrel keeps no replica.
  std::unordered_map<uint64_t, std::deque<PeerId>> directory_;

  /// Home-store mode: replicas held because this node is the object's
  /// home. Session-scoped (an in-memory web cache): lost on failure.
  std::unordered_set<uint64_t> home_store_;

  uint64_t queries_issued_ = 0;
  uint64_t home_redirects_ = 0;
  uint64_t home_empty_ = 0;
  uint64_t delegate_failures_ = 0;
  uint64_t lookup_failures_ = 0;
};

}  // namespace flowercdn

#endif  // FLOWERCDN_SQUIRREL_SQUIRREL_PEER_H_
